package experiments

import (
	"testing"

	"marion/internal/livermore"
	"marion/internal/sim"
	"marion/internal/strategy"
)

func TestLocalBaselineAndStarvedRegisters(t *testing.T) {
	// Local-allocation baseline: Marion strategies should beat it
	// clearly (the paper's 26%-over--O1 shape).
	kinds := []strategy.Kind{strategy.Local, strategy.Postpass}
	cyc := map[strategy.Kind]int64{}
	for _, st := range kinds {
		for _, id := range []int{1, 3, 5, 7} {
			k := livermore.ByID(id)
			c, err := livermore.Build(k, "r2000", st)
			if err != nil {
				t.Fatal(err)
			}
			sum, stats, err := livermore.Run(c, 1, sim.CacheConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if want := k.Ref(1); !closeEnough(sum, want) {
				t.Fatalf("loop%d/%s wrong checksum %v want %v", id, st, sum, want)
			}
			cyc[st] += stats.Cycles
		}
	}
	speed := float64(cyc[strategy.Local]) / float64(cyc[strategy.Postpass])
	t.Logf("local=%d postpass=%d speedup=%.2fx", cyc[strategy.Local], cyc[strategy.Postpass], speed)
	if speed < 1.1 {
		t.Errorf("postpass should clearly beat local-only allocation (got %.2fx)", speed)
	}

	// Register-starved variation: RASE should not lose to Postpass.
	cyc2 := map[strategy.Kind]int64{}
	for _, st := range []strategy.Kind{strategy.Postpass, strategy.RASE, strategy.IPS} {
		for _, id := range []int{7, 8, 9, 10} {
			k := livermore.ByID(id)
			c, err := livermore.Build(k, "r2000s", st)
			if err != nil {
				t.Fatal(err)
			}
			sum, stats, err := livermore.Run(c, 1, sim.CacheConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if want := k.Ref(1); !closeEnough(sum, want) {
				t.Fatalf("loop%d/%s wrong checksum %v want %v", id, st, sum, want)
			}
			cyc2[st] += stats.Cycles
		}
	}
	t.Logf("starved: postpass=%d ips=%d rase=%d", cyc2[strategy.Postpass], cyc2[strategy.IPS], cyc2[strategy.RASE])
	if float64(cyc2[strategy.RASE]) > 1.05*float64(cyc2[strategy.Postpass]) {
		t.Errorf("RASE much slower than postpass under register pressure")
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if b > m {
		m = b
	}
	if b < -m {
		m = -b
	}
	return d <= 1e-9*m
}
