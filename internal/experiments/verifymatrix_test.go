package experiments

import (
	"strings"
	"testing"

	"marion/internal/strategy"
	"marion/internal/verify"
)

func TestVerifyMatrixAllZero(t *testing.T) {
	rows, err := VerifyMatrix([]string{"toyp"}, []strategy.Kind{strategy.Postpass}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Target != "toyp" || r.Strategy != strategy.Postpass {
		t.Errorf("row = %+v", r)
	}
	if r.Funcs == 0 {
		t.Error("no functions verified")
	}
	if r.Findings != 0 || len(r.ByKind) != 0 {
		t.Errorf("findings = %d (%v), want 0", r.Findings, r.ByKind)
	}
	out := FormatVerifyMatrix(rows)
	if !strings.Contains(out, "toyp") || !strings.Contains(out, "total findings: 0") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestFormatVerifyMatrixReportsKinds(t *testing.T) {
	rows := []VerifyRow{{
		Target: "r2000", Strategy: strategy.IPS, Funcs: 3, Findings: 2,
		ByKind: map[verify.Kind]int{verify.KindLatency: 2},
	}}
	out := FormatVerifyMatrix(rows)
	if !strings.Contains(out, "latency=2") || !strings.Contains(out, "total findings: 2") {
		t.Errorf("format output:\n%s", out)
	}
}
