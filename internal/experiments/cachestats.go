package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"marion/internal/cache"
	"marion/internal/driver"
	"marion/internal/livermore"
	"marion/internal/metrics"
	"marion/internal/strategy"
	"marion/internal/targets"
)

// CacheBenchRow is one cold/warm measurement of the compilation cache
// over the Livermore suite: the same module compiled twice against one
// cache, first to populate it, then served from it. Speedup is the
// back end wall-time ratio; the front end (parse + lower) runs outside
// the timer for both.
type CacheBenchRow struct {
	Target      string  `json:"target"`
	Strategy    string  `json:"strategy"`
	Workers     int     `json:"workers"`
	Funcs       int     `json:"funcs"`
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	Speedup     float64 `json:"speedup"`
	WarmHits    int64   `json:"warm_hits"`
	WarmMisses  int64   `json:"warm_misses"`
	HitRate     float64 `json:"hit_rate"`
	// Identical records the correctness gate: warm assembly and
	// statistics byte-identical to cold. CacheBench fails when false.
	Identical bool `json:"identical"`
}

// CacheBench measures the compilation cache on the Livermore suite for
// one target across strategies and worker counts. Every warm run must
// be byte-identical to its cold run and must serve every stored
// function from the cache; a violation is an error, not just a row.
func CacheBench(target string, kinds []strategy.Kind, workersList []int) ([]CacheBenchRow, error) {
	m, err := targets.Load(target)
	if err != nil {
		return nil, err
	}
	var rows []CacheBenchRow
	for _, kind := range kinds {
		for _, workers := range workersList {
			// A fresh cache per cell: cold really is cold, and cells
			// cannot warm each other across worker counts.
			c, err := cache.New(cache.Options{Registry: metrics.NewRegistry()})
			if err != nil {
				return nil, err
			}
			cfg := driver.Config{Strategy: kind, Workers: workers, Cache: c}

			// The front end runs outside the timers; each compile gets a
			// freshly lowered module, as a recompile would.
			coldMod, err := livermore.SuiteModule()
			if err != nil {
				return nil, err
			}
			start := time.Now()
			cold, err := driver.CompileModule(m, coldMod, cfg)
			coldTime := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s/%s cold: %w", target, kind, err)
			}
			afterCold := c.Stats()

			warmMod, err := livermore.SuiteModule()
			if err != nil {
				return nil, err
			}
			start = time.Now()
			warm, err := driver.CompileModule(m, warmMod, cfg)
			warmTime := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s/%s warm: %w", target, kind, err)
			}
			ws := c.Stats()

			hits := ws.Hits() - afterCold.Hits()
			misses := ws.Misses - afterCold.Misses
			row := CacheBenchRow{
				Target:      target,
				Strategy:    kind.String(),
				Workers:     workers,
				Funcs:       len(coldMod.Funcs),
				ColdSeconds: coldTime.Seconds(),
				WarmSeconds: warmTime.Seconds(),
				WarmHits:    hits,
				WarmMisses:  misses,
				Identical: cold.Prog.Print() == warm.Prog.Print() &&
					reflect.DeepEqual(cold.Stats, warm.Stats) &&
					cold.Sel == warm.Sel,
			}
			if warmTime > 0 {
				row.Speedup = coldTime.Seconds() / warmTime.Seconds()
			}
			if hits+misses > 0 {
				row.HitRate = float64(hits) / float64(hits+misses)
			}
			if !row.Identical {
				return nil, fmt.Errorf("%s/%s workers=%d: warm output differs from cold",
					target, kind, workers)
			}
			if hits != afterCold.Stores {
				return nil, fmt.Errorf("%s/%s workers=%d: warm hits = %d, want %d (one per stored function)",
					target, kind, workers, hits, afterCold.Stores)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatCacheBench renders cache bench rows as an aligned table.
func FormatCacheBench(rows []CacheBenchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compilation cache: cold vs warm Livermore suite\n")
	fmt.Fprintf(&b, "%-8s %-9s %7s %6s %9s %9s %8s %8s\n",
		"target", "strategy", "workers", "funcs", "cold(s)", "warm(s)", "speedup", "hitrate")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-9s %7d %6d %9.4f %9.4f %7.1fx %7.0f%%\n",
			r.Target, r.Strategy, r.Workers, r.Funcs,
			r.ColdSeconds, r.WarmSeconds, r.Speedup, 100*r.HitRate)
	}
	return b.String()
}

// WriteCacheBenchJSON writes cache bench rows to path as indented JSON
// (the BENCH_cache.json artifact).
func WriteCacheBenchJSON(path string, rows []CacheBenchRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
