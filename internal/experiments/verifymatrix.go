package experiments

import (
	"fmt"
	"strings"

	"marion/internal/driver"
	"marion/internal/livermore"
	"marion/internal/strategy"
	"marion/internal/targets"
	"marion/internal/verify"
)

// VerifyRow is one cell of the verification matrix: the Livermore
// suite compiled for one target under one strategy, re-checked by the
// emitted-code verifier.
type VerifyRow struct {
	Target   string
	Strategy strategy.Kind
	Funcs    int                 // functions verified
	Findings int                 // total findings (expected 0)
	ByKind   map[verify.Kind]int // findings per invariant class
}

// VerifyMatrix compiles the Livermore suite for every target ×
// strategy combination with the verifier enabled and tallies the
// findings. A healthy back end produces an all-zero matrix; any
// nonzero cell names the invariant class that broke.
func VerifyMatrix(targetNames []string, strats []strategy.Kind, workers int) ([]VerifyRow, error) {
	var rows []VerifyRow
	for _, tn := range targetNames {
		m, err := targets.Load(tn)
		if err != nil {
			return nil, err
		}
		for _, st := range strats {
			// A fresh module per compile: the glue transform rewrites
			// the IL in place.
			mod, err := livermore.SuiteModule()
			if err != nil {
				return nil, err
			}
			c, err := driver.CompileModule(m, mod, driver.Config{
				Strategy: st, Verify: true, Workers: workers,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tn, st, err)
			}
			row := VerifyRow{
				Target: tn, Strategy: st,
				Funcs:    len(c.Prog.Funcs),
				Findings: len(c.Verify.Findings),
				ByKind:   map[verify.Kind]int{},
			}
			for _, k := range verify.Kinds() {
				if n := c.Verify.Count(k); n > 0 {
					row.ByKind[k] = n
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatVerifyMatrix renders the verification matrix as text, one row
// per target × strategy with a per-kind breakdown column when any
// finding exists.
func FormatVerifyMatrix(rows []VerifyRow) string {
	var sb strings.Builder
	sb.WriteString("Emitted-code verification: Livermore suite, findings per target x strategy\n")
	fmt.Fprintf(&sb, "%-8s %-9s %6s %9s  %s\n", "Target", "Strategy", "Funcs", "Findings", "ByKind")
	total := 0
	for _, r := range rows {
		by := ""
		if len(r.ByKind) > 0 {
			var parts []string
			for _, k := range verify.Kinds() {
				if n := r.ByKind[k]; n > 0 {
					parts = append(parts, fmt.Sprintf("%s=%d", k, n))
				}
			}
			by = strings.Join(parts, " ")
		}
		fmt.Fprintf(&sb, "%-8s %-9s %6d %9d  %s\n", r.Target, r.Strategy, r.Funcs, r.Findings, by)
		total += r.Findings
	}
	fmt.Fprintf(&sb, "total findings: %d\n", total)
	return sb.String()
}
