package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table2Row is one phase of the system with its size in source lines
// (the paper reported C lines; we report Go lines of this reproduction,
// and Maril lines for the target-dependent parts the paper's CGG emitted
// as generated C).
type Table2Row struct {
	Phase string
	Lines int
}

// table2Groups maps the paper's phases onto this repository's packages.
var table2Groups = []struct {
	phase string
	dirs  []string
}{
	{"Code Generator Generator (CGG: maril, mach)", []string{"internal/maril", "internal/mach"}},
	{"Target- and strategy-independent (TSI)", []string{
		"internal/ir", "internal/cc", "internal/ilgen", "internal/xform",
		"internal/sel", "internal/cdag", "internal/sched", "internal/regalloc",
		"internal/asm", "internal/driver", "internal/sim",
	}},
	{"Target-dependent (TD), descriptions", []string{"internal/targets"}},
	{"Strategy-dependent (SD)", []string{"internal/strategy"}},
}

// Table2 counts source lines under the repository root.
func Table2(root string) ([]Table2Row, error) {
	var rows []Table2Row
	for _, g := range table2Groups {
		total := 0
		for _, d := range g.dirs {
			n, err := countGoLines(filepath.Join(root, d))
			if err != nil {
				return nil, err
			}
			total += n
		}
		rows = append(rows, Table2Row{Phase: g.phase, Lines: total})
	}
	return rows, nil
}

func countGoLines(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			total++
		}
		f.Close()
	}
	return total, nil
}

// FormatTable2 renders Table 2 as text.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Marion system source size (Go lines, tests excluded)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-50s %6d\n", r.Phase, r.Lines)
	}
	return sb.String()
}
