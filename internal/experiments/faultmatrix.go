package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"marion/internal/cc"
	"marion/internal/driver"
	"marion/internal/faults"
	"marion/internal/ilgen"
	"marion/internal/ir"
	"marion/internal/pipeline"
	"marion/internal/strategy"
	"marion/internal/targets"
)

// ---------------------------------------------------------------------
// Fault-injection degradation matrix.
//
// The chaos sweep arms one fault at a time — every injection site ×
// every mode (panic, err, hang) — and compiles a small module for every
// target × strategy with the degradation ladder and the emitted-code
// verifier enabled. A robust back end never lets the process die: each
// faulted function degrades one rung and the fallback output verifies
// clean. Any outright failure or verifier finding is a defect.

// chaosBudget bounds each per-function attempt so hang-mode faults
// resolve into typed budget errors instead of stalling the sweep.
const chaosBudget = 30 * time.Millisecond

// chaosSrc is the module every cell compiles: small enough that the
// sweep stays fast, mixed enough (integer loop, float expression, call)
// to reach every injection site on every target.
const chaosSrc = `
int ker(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += i * i;
    return s;
}
double mix(double a, double b) { return a * b + a - b; }
int use(int n) { return ker(n) + ker(n + 1); }
`

func chaosModule() (*ir.Module, error) {
	f, err := cc.Compile("chaos.c", chaosSrc)
	if err != nil {
		return nil, err
	}
	return ilgen.Lower(f)
}

// FaultCell is one sweep cell: one armed fault, one target, one
// strategy.
type FaultCell struct {
	Site     string
	Mode     faults.Mode
	Target   string
	Strategy strategy.Kind
	Funcs    int // functions in the module
	Degraded int // functions emitted via a fallback rung
	Rungs    []string
	Failed   int // functions that failed outright (defect)
	Findings int // verifier findings on the emitted code (defect)
}

// FaultMatrix runs the chaos sweep. Faults are armed one at a time on
// the first attempt only, so the ladder gets a clean retry; a site that
// is never reached under some strategy simply degrades nothing there.
func FaultMatrix(targetNames []string, strats []strategy.Kind, workers int) ([]FaultCell, error) {
	var cells []FaultCell
	for _, site := range faults.Sites() {
		for _, mode := range []faults.Mode{faults.Panic, faults.Error, faults.Hang} {
			set, err := faults.Parse(site + ":" + mode.String())
			if err != nil {
				return nil, err
			}
			for _, tn := range targetNames {
				m, err := targets.Load(tn)
				if err != nil {
					return nil, err
				}
				for _, st := range strats {
					// A fresh module per compile: the back end rewrites
					// the IL in place.
					mod, err := chaosModule()
					if err != nil {
						return nil, err
					}
					cell := FaultCell{
						Site: site, Mode: mode, Target: tn, Strategy: st,
						Funcs: len(mod.Funcs),
					}
					c, err := driver.CompileModule(m, mod, driver.Config{
						Strategy: st, Workers: workers,
						Verify: true, Budget: chaosBudget, Faults: set,
					})
					if err != nil {
						var diags *pipeline.Diagnostics
						if !errors.As(err, &diags) {
							return nil, fmt.Errorf("%s:%s %s/%s: %w", site, mode, tn, st, err)
						}
						cell.Failed = len(diags.All())
					} else {
						cell.Degraded = len(c.Degradations)
						cell.Findings = len(c.Verify.Findings)
						rungs := map[string]bool{}
						for _, d := range c.Degradations {
							rungs[d.To.String()] = true
						}
						for r := range rungs {
							cell.Rungs = append(cell.Rungs, r)
						}
						sort.Strings(cell.Rungs)
					}
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells, nil
}

// FormatFaultMatrix renders the sweep as a per-site/per-target matrix:
// each cell is degraded/total function-compiles summed over the
// strategies, with "!" marking outright failures or verifier findings.
func FormatFaultMatrix(cells []FaultCell, targetNames []string) string {
	type key struct{ site, mode, target string }
	type agg struct{ degraded, total, failed, findings int }
	sum := map[key]*agg{}
	rungs := map[string]map[string]bool{} // site:mode -> rung set
	for _, c := range cells {
		k := key{c.Site, c.Mode.String(), c.Target}
		a := sum[k]
		if a == nil {
			a = &agg{}
			sum[k] = a
		}
		a.degraded += c.Degraded
		a.total += c.Funcs
		a.failed += c.Failed
		a.findings += c.Findings
		rk := c.Site + ":" + c.Mode.String()
		if rungs[rk] == nil {
			rungs[rk] = map[string]bool{}
		}
		for _, r := range c.Rungs {
			rungs[rk][r] = true
		}
	}

	var sb strings.Builder
	sb.WriteString("Fault-injection degradation matrix: degraded/compiled functions per site x target\n")
	sb.WriteString("(one armed fault per cell, first attempt only; budget " +
		chaosBudget.String() + "; all fallbacks re-verified)\n")
	fmt.Fprintf(&sb, "%-16s", "Site:Mode")
	for _, tn := range targetNames {
		fmt.Fprintf(&sb, " %9s", tn)
	}
	sb.WriteString("  Rungs\n")
	totalFailed, totalFindings := 0, 0
	for _, site := range faults.Sites() {
		for _, mode := range []string{"panic", "err", "hang"} {
			rk := site + ":" + mode
			if rungs[rk] == nil {
				continue
			}
			fmt.Fprintf(&sb, "%-16s", rk)
			for _, tn := range targetNames {
				a := sum[key{site, mode, tn}]
				cellText := fmt.Sprintf("%d/%d", a.degraded, a.total)
				if a.failed > 0 || a.findings > 0 {
					cellText += "!"
					totalFailed += a.failed
					totalFindings += a.findings
				}
				fmt.Fprintf(&sb, " %9s", cellText)
			}
			var rs []string
			for r := range rungs[rk] {
				rs = append(rs, r)
			}
			sort.Strings(rs)
			fmt.Fprintf(&sb, "  %s\n", strings.Join(rs, ","))
		}
	}
	fmt.Fprintf(&sb, "outright failures: %d, verifier findings: %d\n",
		totalFailed, totalFindings)
	return sb.String()
}
