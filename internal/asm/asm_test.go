package asm

import (
	"strings"
	"testing"

	"marion/internal/ir"
	"marion/internal/maril"
)

const tinyDesc = `
declare {
    %reg r[0:3] (int, ptr);
    %resource EX;
    %def imm [-100:100];
    %label lab [-10:10] +relative;
    %memory m[0:1000];
}
cwvm {
    %general (int, ptr) r;
    %allocable r[1:2]; %calleesave r[2:2];
    %sp r[3]; %fp r[3]; %retaddr r[0];
}
instr {
    %instr add r, r, r {$1 = $2 + $3;} [EX] (1,1,0)
    %instr ld r, r, #imm {$1 = m[$2 + $3];} [EX] (1,2,0)
}
`

func TestOperandForms(t *testing.T) {
	if Reg(3).String() != "t3" {
		t.Error("pseudo string")
	}
	if Imm(-7).String() != "-7" {
		t.Error("imm string")
	}
	h := Operand{Kind: OpPseudoHalf, Pseudo: 2, Half: 1}
	if h.String() != "hi(t2)" {
		t.Error("half string")
	}
	if !Reg(0).IsReg() || Imm(0).IsReg() {
		t.Error("IsReg")
	}
	if Reg(1) == Reg(2) || Reg(1) != Reg(1) {
		t.Error("operand comparability")
	}
}

func TestInstDefsUses(t *testing.T) {
	m, err := maril.Parse("tiny", tinyDesc)
	if err != nil {
		t.Fatal(err)
	}
	add := m.InstrByLabel("add")
	in := New(add, Reg(0), Reg(1), Reg(2))
	defs := in.Defs(nil)
	uses := in.Uses(nil)
	if len(defs) != 1 || defs[0].Pseudo != 0 {
		t.Errorf("defs = %v", defs)
	}
	if len(uses) != 2 {
		t.Errorf("uses = %v", uses)
	}
	if got := in.String(); got != "add t0, t1, t2" {
		t.Errorf("string = %q", got)
	}
}

func TestFuncHelpers(t *testing.T) {
	m, err := maril.Parse("tiny", tinyDesc)
	if err != nil {
		t.Fatal(err)
	}
	fn := ir.NewFunc("f", ir.Void)
	irb := fn.NewBlock()
	af := &Func{Name: "f", IR: fn}
	p := af.NewPseudo(m.RegSet("r"), ir.NoReg)
	if p != 0 || af.Pseudos[p].Set.Name != "r" {
		t.Error("pseudo bookkeeping")
	}
	b := &Block{IR: irb}
	af.Blocks = append(af.Blocks, b)
	if af.Block(irb) != b || af.Block(fn.NewBlock()) != nil {
		t.Error("Block lookup")
	}
	if af.NewSeqID() == af.NewSeqID() {
		t.Error("sequence ids must be unique")
	}
}

func TestProgramPrintPacking(t *testing.T) {
	m, err := maril.Parse("tiny", tinyDesc)
	if err != nil {
		t.Fatal(err)
	}
	add := m.InstrByLabel("add")
	fn := ir.NewFunc("f", ir.Void)
	irb := fn.NewBlock()
	a := New(add, Reg(0), Reg(1), Reg(1))
	b := New(add, Reg(2), Reg(1), Reg(1))
	a.Cycle, b.Cycle = 0, 0 // packed
	af := &Func{Name: "f", IR: fn, Blocks: []*Block{{IR: irb, Insts: []*Inst{a, b}}}}
	prog := &Program{Machine: m, Funcs: []*Func{af}}
	out := prog.Print()
	if !strings.Contains(out, "| add") {
		t.Errorf("packed marker missing:\n%s", out)
	}
	if prog.Lookup("f") != af || prog.Lookup("g") != nil {
		t.Error("Lookup")
	}
}
