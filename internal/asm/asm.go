// Package asm defines the target program representation: instructions
// instantiated from machine templates, grouped into basic blocks and
// functions. The same structures flow from the selector through the
// scheduler and register allocator to the printer and the simulator.
package asm

import (
	"fmt"
	"strings"

	"marion/internal/ir"
	"marion/internal/mach"
)

// PseudoID names a back end pseudo-register (created by the selector;
// mapped to physical registers by the allocator).
type PseudoID int32

// NoPseudo means "no pseudo register".
const NoPseudo PseudoID = -1

// OperandKind classifies an instruction operand.
type OperandKind uint8

const (
	OpNone OperandKind = iota
	OpPseudo
	OpPhys
	OpPseudoHalf // lo/hi half of a wide pseudo (resolved after allocation)
	OpImm
	OpBlock // branch target
	OpSym   // function or global symbol (call target / address)
)

// Operand is one actual operand of an instruction.
type Operand struct {
	Kind   OperandKind
	Pseudo PseudoID
	Phys   mach.PhysID
	Half   int // 0 = low, 1 = high (OpPseudoHalf)
	Imm    int64
	Block  *ir.Block
	Sym    *ir.Sym
}

// Reg returns a pseudo-register operand.
func Reg(p PseudoID) Operand { return Operand{Kind: OpPseudo, Pseudo: p} }

// Phys returns a physical-register operand.
func Phys(p mach.PhysID) Operand { return Operand{Kind: OpPhys, Phys: p} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OpImm, Imm: v} }

// IsReg reports whether the operand is a register (pseudo, phys or half).
func (o Operand) IsReg() bool {
	return o.Kind == OpPseudo || o.Kind == OpPhys || o.Kind == OpPseudoHalf
}

func (o Operand) String() string {
	switch o.Kind {
	case OpPseudo:
		return fmt.Sprintf("t%d", o.Pseudo)
	case OpPhys:
		return fmt.Sprintf("p%d", o.Phys)
	case OpPseudoHalf:
		if o.Half == 0 {
			return fmt.Sprintf("lo(t%d)", o.Pseudo)
		}
		return fmt.Sprintf("hi(t%d)", o.Pseudo)
	case OpImm:
		return fmt.Sprintf("%d", o.Imm)
	case OpBlock:
		return o.Block.Name()
	case OpSym:
		return o.Sym.Name
	}
	return "?"
}

// Inst is one instruction: a machine template plus actual operands.
type Inst struct {
	Tmpl *mach.Instr
	Args []Operand

	// Implicit physical register effects (used for calls: argument
	// registers used, caller-save set clobbered).
	ImpUses []mach.PhysID
	ImpDefs []mach.PhysID

	// Cycle is the issue cycle assigned by the scheduler, relative to the
	// start of the basic block; instructions with equal cycles are packed
	// into one long instruction word. -1 before scheduling.
	Cycle int

	// SeqID groups the sub-operations of one %seq (or escape) expansion:
	// temporal-latch dataflow is paired within a sequence, so the pairing
	// survives arbitrary scheduling reorders. 0 = not part of a sequence.
	SeqID int
}

// New returns an instruction instance for the given template.
func New(tmpl *mach.Instr, args ...Operand) *Inst {
	return &Inst{Tmpl: tmpl, Args: args, Cycle: -1}
}

// Defs appends the register operands written by the instruction to buf.
func (in *Inst) Defs(buf []Operand) []Operand {
	for _, i := range in.Tmpl.DefOps {
		if in.Args[i].IsReg() {
			buf = append(buf, in.Args[i])
		}
	}
	return buf
}

// Uses appends the register operands read by the instruction to buf.
func (in *Inst) Uses(buf []Operand) []Operand {
	for _, i := range in.Tmpl.UseOps {
		if in.Args[i].IsReg() {
			buf = append(buf, in.Args[i])
		}
	}
	return buf
}

func (in *Inst) String() string {
	var sb strings.Builder
	sb.WriteString(in.Tmpl.Mnemonic)
	for i, a := range in.Args {
		if i == 0 {
			sb.WriteByte(' ')
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	return sb.String()
}

// PseudoInfo describes one back end pseudo-register.
type PseudoInfo struct {
	Set *mach.RegSet // register set the pseudo must be colored in
	IR  ir.RegID     // originating IL pseudo, or ir.NoReg
	// Precolor, when valid, pins the pseudo to one physical register.
	Precolor mach.PhysID
	// SpillCost accumulates use/def counts weighted by loop depth.
	SpillCost float64
	// NoSpill marks short-lived temporaries the allocator must not spill
	// (e.g. pseudos introduced by spill code itself).
	NoSpill bool
}

// Block is one basic block of target code.
type Block struct {
	IR    *ir.Block
	Insts []*Inst
	// SchedCost is the scheduler's estimated cycle count for the block
	// (used by RASE and for Table 4's estimated execution time).
	SchedCost int
}

// Label returns the block's assembly label.
func (b *Block) Label() string { return b.IR.Name() }

// Func is one compiled function.
type Func struct {
	Name    string
	IR      *ir.Func
	Blocks  []*Block
	Pseudos []PseudoInfo

	// FrameSize is the total stack frame, filled by the strategy after
	// allocation (locals + spills + saves + outgoing args).
	FrameSize int
	// Outgoing is the outgoing-argument area size.
	Outgoing int
	// UsesCalls reports whether the function makes calls (needs the
	// return address saved).
	UsesCalls bool
	// seqCounter feeds NewSeqID.
	seqCounter int
	// CalleeSaved lists the callee-save registers the allocator used.
	CalleeSaved []mach.PhysID
	// SpillSlots is the number of 8-byte spill slots in the frame.
	SpillSlots int
}

// NewSeqID returns a fresh sequence identity for a %seq expansion.
func (f *Func) NewSeqID() int {
	f.seqCounter++
	return f.seqCounter
}

// NewPseudo allocates a fresh pseudo-register constrained to set.
func (f *Func) NewPseudo(set *mach.RegSet, irReg ir.RegID) PseudoID {
	f.Pseudos = append(f.Pseudos, PseudoInfo{Set: set, IR: irReg, Precolor: mach.NoPhys})
	return PseudoID(len(f.Pseudos) - 1)
}

// Block returns the asm block for an IR block.
func (f *Func) Block(b *ir.Block) *Block {
	for _, ab := range f.Blocks {
		if ab.IR == b {
			return ab
		}
	}
	return nil
}

// Program is a complete compiled module.
type Program struct {
	Machine *mach.Machine
	Name    string
	Funcs   []*Func
	Globals []*ir.Sym
}

// Lookup returns the function with the given name, or nil.
func (p *Program) Lookup(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Print renders the program as assembly text.
func (p *Program) Print() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; target %s\n", p.Machine.Name)
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, ".data %s size=%d addr=%d\n", g.Name, g.Size, g.Offset)
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "\n%s:  ; frame=%d\n", f.Name, f.FrameSize)
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "%s:\n", b.Label())
			lastCycle := -2
			for _, in := range b.Insts {
				pack := " "
				if in.Cycle >= 0 && in.Cycle == lastCycle {
					pack = "|" // packed with the previous instruction
				}
				lastCycle = in.Cycle
				fmt.Fprintf(&sb, "  %s %s\n", pack, in.String())
			}
		}
	}
	return sb.String()
}
