package driver_test

import (
	"fmt"
	"testing"

	"marion/internal/driver"
	"marion/internal/livermore"
	"marion/internal/strategy"
	"marion/internal/targets"
)

// TestIndexedSelectionIdentical compiles the same translation unit with
// the selection template index + memo caches on and with the linear
// brute-force reference path, for every registered target and strategy:
// the fast path must be unobservable in the emitted assembly.
func TestIndexedSelectionIdentical(t *testing.T) {
	for _, target := range targets.Names() {
		for _, kind := range allKinds {
			t.Run(fmt.Sprintf("%s/%s", target, kind), func(t *testing.T) {
				idx, err := driver.Compile("par.c", parProg, driver.Config{
					Target: target, Strategy: kind,
				})
				if err != nil {
					t.Fatalf("indexed: %v", err)
				}
				lin, err := driver.Compile("par.c", parProg, driver.Config{
					Target: target, Strategy: kind, LinearSelect: true,
				})
				if err != nil {
					t.Fatalf("linear: %v", err)
				}
				if a, b := idx.Prog.Print(), lin.Prog.Print(); a != b {
					t.Errorf("assembly differs between indexed and linear selection\n--- indexed ---\n%s\n--- linear ---\n%s", a, b)
				}
				if idx.Sel.Tried >= lin.Sel.Tried {
					t.Errorf("index tried %d templates, linear %d: index should prune", idx.Sel.Tried, lin.Sel.Tried)
				}
				if lin.Sel.MemoHits != 0 || lin.Sel.MemoMisses != 0 {
					t.Errorf("linear path used the memo caches: %+v", lin.Sel)
				}
			})
		}
	}
}

// TestIndexedSelectionIdenticalSuite repeats the byte-identity check on
// the full Livermore suite (28 functions) for one target, where the
// pattern mix is much richer than the unit program above.
func TestIndexedSelectionIdenticalSuite(t *testing.T) {
	compile := func(linear bool) string {
		mod, err := livermore.SuiteModule()
		if err != nil {
			t.Fatal(err)
		}
		m, err := targets.Load("r2000")
		if err != nil {
			t.Fatal(err)
		}
		c, err := driver.CompileModule(m, mod, driver.Config{
			Strategy: strategy.Postpass, LinearSelect: linear,
		})
		if err != nil {
			t.Fatalf("linear=%v: %v", linear, err)
		}
		return c.Prog.Print()
	}
	if idx, lin := compile(false), compile(true); idx != lin {
		t.Error("suite assembly differs between indexed and linear selection")
	}
}
