package driver

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"marion/internal/cache"
	"marion/internal/faults"
	"marion/internal/metrics"
	"marion/internal/strategy"
)

var cacheTargets = []string{"r2000", "r2000s", "m88000", "i860", "rs6000", "toyp"}

var cacheStrategies = []strategy.Kind{
	strategy.Naive, strategy.Postpass, strategy.IPS, strategy.RASE, strategy.Local,
}

func newTestCache(t *testing.T, dir string) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Options{Dir: dir, Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheColdWarmByteIdentical is the determinism suite: on every
// target and strategy, a warm compile served from the cache must be
// byte-identical to the cold compile that populated it — same assembly,
// same per-function statistics, same selection counters.
func TestCacheColdWarmByteIdentical(t *testing.T) {
	for _, target := range cacheTargets {
		for _, strat := range cacheStrategies {
			t.Run(target+"/"+strat.String(), func(t *testing.T) {
				c := newTestCache(t, "")
				cfg := Config{Target: target, Strategy: strat, Cache: c}

				cold, err := Compile("tiny.c", tinyProg, cfg)
				if err != nil {
					t.Fatalf("cold: %v", err)
				}
				cs := c.Stats()
				if cs.Hits() != 0 {
					t.Fatalf("cold run hit the empty cache: %+v", cs)
				}

				warm, err := Compile("tiny.c", tinyProg, cfg)
				if err != nil {
					t.Fatalf("warm: %v", err)
				}
				ws := c.Stats()
				if got, want := ws.MemHits, cs.Stores; got != want {
					t.Errorf("warm hits = %d, want %d (one per stored function)", got, want)
				}

				if coldAsm, warmAsm := cold.Prog.Print(), warm.Prog.Print(); coldAsm != warmAsm {
					t.Errorf("warm assembly differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", coldAsm, warmAsm)
				}
				if !reflect.DeepEqual(cold.Stats, warm.Stats) {
					t.Errorf("stats differ: cold %+v warm %+v", cold.Stats, warm.Stats)
				}
				if cold.Sel != warm.Sel {
					t.Errorf("sel counters differ: cold %+v warm %+v", cold.Sel, warm.Sel)
				}
			})
		}
	}
}

// TestCacheWarmAcrossWorkerCounts pins that cache hits commit in source
// order like everything else: warm output is byte-identical whatever
// the worker count.
func TestCacheWarmAcrossWorkerCounts(t *testing.T) {
	c := newTestCache(t, "")
	base := Config{Target: "r2000", Strategy: strategy.RASE, Cache: c}

	cold, err := Compile("tiny.c", tinyProg, base)
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Prog.Print()
	for _, workers := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = workers
		warm, err := Compile("tiny.c", tinyProg, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := warm.Prog.Print(); got != want {
			t.Errorf("workers=%d: warm assembly differs from cold", workers)
		}
	}
	if s := c.Stats(); s.MemHits != 3*s.Stores {
		t.Errorf("cache stats = %+v, want three full warm runs of hits", s)
	}
}

// TestCachePoisonedEntryRejected pins the safety property: a corrupted
// disk entry is rejected (and deleted), and the compile falls back to a
// recompile with byte-identical output.
func TestCachePoisonedEntryRejected(t *testing.T) {
	dir := t.TempDir()
	cfgFor := func(c *cache.Cache) Config {
		return Config{Target: "m88000", Strategy: strategy.Postpass, Cache: c}
	}

	cold, err := Compile("tiny.c", tinyProg, cfgFor(newTestCache(t, dir)))
	if err != nil {
		t.Fatal(err)
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.mce"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no disk entries written (%v)", err)
	}
	// Poison every entry: flip one payload byte in each.
	for _, f := range files {
		blob, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)-1] ^= 0xFF
		if err := os.WriteFile(f, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh cache over the poisoned directory: every lookup must
	// reject, recompile, and re-store a good entry.
	c2 := newTestCache(t, dir)
	warm, err := Compile("tiny.c", tinyProg, cfgFor(c2))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Prog.Print() != warm.Prog.Print() {
		t.Error("recompile after poisoned cache differs from cold output")
	}
	s := c2.Stats()
	if s.Rejects != int64(len(files)) {
		t.Errorf("rejects = %d, want %d", s.Rejects, len(files))
	}
	if s.Hits() != 0 {
		t.Errorf("poisoned entries served as hits: %+v", s)
	}

	// Third run: the healed entries serve.
	c3 := newTestCache(t, dir)
	again, err := Compile("tiny.c", tinyProg, cfgFor(c3))
	if err != nil {
		t.Fatal(err)
	}
	if again.Prog.Print() != cold.Prog.Print() {
		t.Error("healed cache output differs")
	}
	if s := c3.Stats(); s.DiskHits == 0 || s.Rejects != 0 {
		t.Errorf("healed cache stats = %+v", s)
	}
}

// TestCacheDisabledUnderFaults pins that an armed fault harness turns
// the cache off entirely: injected failures must not be cached, and
// hits must not mask the sites under test.
func TestCacheDisabledUnderFaults(t *testing.T) {
	set, err := faults.Parse("select:err@fn=fib")
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCache(t, "")
	out, err := Compile("tiny.c", tinyProg, Config{
		Target: "toyp", Strategy: strategy.Postpass, Faults: set, Cache: c,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Degradations) != 1 {
		t.Fatalf("degradations = %v", out.Degradations)
	}
	if s := c.Stats(); s != (cache.Stats{}) {
		t.Errorf("cache touched under faults: %+v", s)
	}
}

// TestRetryTimeSeparatedFromPhaseTimes pins the timing fix: a function
// that walks the degradation ladder attributes only its accepted
// attempt to PhaseTimes; the failed primary attempt's wall time lands
// in RetryTime instead of double-counting the phases.
func TestRetryTimeSeparatedFromPhaseTimes(t *testing.T) {
	set, err := faults.Parse("strategy:err@fn=fib")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Compile("tiny.c", tinyProg, Config{
		Target: "toyp", Strategy: strategy.Postpass, Faults: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Degradations) != 1 {
		t.Fatalf("degradations = %v", out.Degradations)
	}
	// The faulted attempt ran xform and select before its strategy
	// phase failed; that time must be accounted as retry overhead.
	if out.RetryTime <= 0 {
		t.Error("failed attempt's wall time not recorded in RetryTime")
	}
	for _, phase := range []string{"xform", "select", "strategy"} {
		if out.PhaseTimes[phase] <= 0 {
			t.Errorf("phase %q missing from accepted-attempt times", phase)
		}
	}
}

// TestCacheHitVerifyReport pins that with Verify on, a warm compile
// reports the same (clean) verifier outcome as the cold one.
func TestCacheHitVerifyReport(t *testing.T) {
	c := newTestCache(t, "")
	cfg := Config{Target: "rs6000", Strategy: strategy.IPS, Verify: true, Cache: c}
	cold, err := Compile("tiny.c", tinyProg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Compile("tiny.c", tinyProg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Verify == nil || warm.Verify == nil {
		t.Fatal("verify reports missing")
	}
	if cold.Verify.String() != warm.Verify.String() {
		t.Errorf("verify reports differ:\ncold: %s\nwarm: %s", cold.Verify, warm.Verify)
	}
	if s := c.Stats(); s.Hits() == 0 {
		t.Errorf("verified warm run did not hit: %+v", s)
	}
	if !strings.Contains(warm.Prog.Print(), "fib") {
		t.Error("warm program lost its functions")
	}
}
