package driver

import (
	"testing"

	"marion/internal/asm"
	"marion/internal/strategy"
)

const tinyProg = `
int g;
double acc;

int addmul(int a, int b) {
    return a * b + g;
}

double dscale(double x) {
    acc = acc + 2.0 * x;
    return acc;
}

int sumto(int n) {
    int s = 0;
    int i;
    for (i = 1; i <= n; i++) s += i;
    return s;
}

int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
`

func compile(t *testing.T, strat strategy.Kind) *Compiled {
	t.Helper()
	c, err := Compile("tiny.c", tinyProg, Config{Target: "toyp", Strategy: strat})
	if err != nil {
		t.Fatalf("compile (%v): %v", strat, err)
	}
	return c
}

func TestCompileAllStrategies(t *testing.T) {
	for _, k := range []strategy.Kind{strategy.Naive, strategy.Postpass, strategy.IPS, strategy.RASE} {
		t.Run(k.String(), func(t *testing.T) {
			c := compile(t, k)
			if len(c.Prog.Funcs) != 4 {
				t.Fatalf("functions = %d", len(c.Prog.Funcs))
			}
			checkAllPhysical(t, c)
		})
	}
}

// checkAllPhysical asserts allocation left no pseudo operands behind.
func checkAllPhysical(t *testing.T, c *Compiled) {
	t.Helper()
	for _, f := range c.Prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				for _, a := range in.Args {
					if a.Kind == asm.OpPseudo || a.Kind == asm.OpPseudoHalf {
						t.Errorf("%s: unallocated operand in %s", f.Name, in)
					}
				}
			}
		}
	}
}

func TestGlobalLayout(t *testing.T) {
	c := compile(t, strategy.Postpass)
	if len(c.Prog.Globals) < 2 {
		t.Fatalf("globals = %d", len(c.Prog.Globals))
	}
	seen := map[int]bool{}
	for _, g := range c.Prog.Globals {
		if g.Offset < DataBase {
			t.Errorf("%s at %d below data base", g.Name, g.Offset)
		}
		if g.Type.Size() == 8 && g.Offset%8 != 0 {
			t.Errorf("%s misaligned at %d", g.Name, g.Offset)
		}
		if seen[g.Offset] {
			t.Errorf("overlapping global at %d", g.Offset)
		}
		seen[g.Offset] = true
	}
}

func TestPrologueEpilogue(t *testing.T) {
	c := compile(t, strategy.Postpass)
	fib := c.Prog.Lookup("fib")
	if fib == nil {
		t.Fatal("fib missing")
	}
	if !fib.UsesCalls {
		t.Error("fib should use calls")
	}
	if fib.FrameSize <= 0 {
		t.Errorf("fib frame = %d", fib.FrameSize)
	}
	entry := fib.Blocks[0].Insts
	if entry[0].Tmpl.Mnemonic != "addi" || entry[0].Args[2].Imm != -int64(fib.FrameSize) {
		t.Errorf("prologue first inst = %v", entry[0])
	}
	// Some block must end with epilogue + ret (+ delay nop).
	foundRet := false
	for _, b := range fib.Blocks {
		for i, in := range b.Insts {
			if in.Tmpl.IsRet {
				foundRet = true
				// There must be an sp-restoring addi before the ret.
				ok := false
				for j := 0; j < i; j++ {
					if b.Insts[j].Tmpl.Mnemonic == "addi" && b.Insts[j].Args[2].Imm == int64(fib.FrameSize) {
						ok = true
					}
				}
				if !ok {
					t.Error("no sp restore before ret")
				}
			}
		}
	}
	if !foundRet {
		t.Error("no return instruction")
	}
}

func TestLeafFunctionStillFramed(t *testing.T) {
	c := compile(t, strategy.Postpass)
	f := c.Prog.Lookup("addmul")
	if f.UsesCalls {
		t.Error("addmul is a leaf")
	}
	// Leaves still save the old fp (frame always materialized).
	if f.FrameSize < 8 {
		t.Errorf("frame = %d", f.FrameSize)
	}
}

func TestScheduledCyclesAssigned(t *testing.T) {
	c := compile(t, strategy.Postpass)
	for _, f := range c.Prog.Funcs {
		for _, b := range f.Blocks {
			last := -1
			for _, in := range b.Insts {
				if in.Cycle >= 0 {
					if in.Cycle < last {
						t.Errorf("%s: cycles not monotone in block %s", f.Name, b.Label())
					}
					last = in.Cycle
				}
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	c := compile(t, strategy.IPS)
	st := c.Stats["sumto"]
	if st == nil || st.SchedulePasses == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.EstimatedCycles <= 0 {
		t.Errorf("estimated cycles = %d", st.EstimatedCycles)
	}
}
