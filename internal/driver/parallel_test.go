package driver_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"marion/internal/driver"
	"marion/internal/ir"
	"marion/internal/livermore"
	"marion/internal/pipeline"
	"marion/internal/strategy"
	"marion/internal/targets"
)

// parProg exercises every strategy on every target: integer and float
// arithmetic, loops, calls, globals.
const parProg = `
int g;
double acc;

int addmul(int a, int b) {
    return a * b + g;
}

double dscale(double x) {
    acc = acc + 2.0 * x;
    return acc;
}

int sumto(int n) {
    int s = 0;
    int i;
    for (i = 1; i <= n; i++) s += i;
    return s;
}

int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
`

var allKinds = []strategy.Kind{
	strategy.Naive, strategy.Postpass, strategy.IPS, strategy.RASE, strategy.Local,
}

// TestParallelDeterminism compiles the same translation unit with 1 and
// 8 workers across every registered target and strategy, asserting
// byte-identical assembly and equal per-function statistics: the
// parallel back end must be unobservable in the output.
func TestParallelDeterminism(t *testing.T) {
	for _, target := range targets.Names() {
		for _, kind := range allKinds {
			t.Run(fmt.Sprintf("%s/%s", target, kind), func(t *testing.T) {
				seq, err := driver.Compile("par.c", parProg, driver.Config{
					Target: target, Strategy: kind, Workers: 1,
				})
				if err != nil {
					t.Fatalf("workers=1: %v", err)
				}
				par, err := driver.Compile("par.c", parProg, driver.Config{
					Target: target, Strategy: kind, Workers: 8,
				})
				if err != nil {
					t.Fatalf("workers=8: %v", err)
				}
				if a, b := seq.Prog.Print(), par.Prog.Print(); a != b {
					t.Errorf("assembly differs between workers=1 and workers=8\n--- seq ---\n%s\n--- par ---\n%s", a, b)
				}
				if !reflect.DeepEqual(seq.Stats, par.Stats) {
					t.Errorf("stats differ:\nseq: %+v\npar: %+v", seq.Stats, par.Stats)
				}
			})
		}
	}
}

// TestSuiteParallelDeterminism repeats the check on a large module (all
// Livermore kernels merged, 28 functions), where worker interleaving is
// actually exercised.
func TestSuiteParallelDeterminism(t *testing.T) {
	compile := func(workers int) string {
		mod, err := livermore.SuiteModule()
		if err != nil {
			t.Fatal(err)
		}
		m, err := targets.Load("r2000")
		if err != nil {
			t.Fatal(err)
		}
		c, err := driver.CompileModule(m, mod, driver.Config{
			Strategy: strategy.Postpass, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(c.Prog.Funcs) != len(mod.Funcs) {
			t.Fatalf("workers=%d: %d functions compiled, want %d", workers, len(c.Prog.Funcs), len(mod.Funcs))
		}
		return c.Prog.Print()
	}
	seq := compile(1)
	par := compile(8)
	if seq != par {
		t.Error("suite assembly differs between workers=1 and workers=8")
	}
}

// brokenModule builds a module whose named functions cannot be selected
// (a statement no instruction template matches), plus one good one.
func brokenModule(broken ...string) *ir.Module {
	mod := &ir.Module{Name: "broken.c"}
	for _, name := range broken {
		fn := ir.NewFunc(name, ir.I32)
		b := fn.NewBlock()
		b.Stmts = append(b.Stmts,
			&ir.Node{Op: ir.BadOp, Type: ir.I32},
			&ir.Node{Op: ir.Ret})
		fn.Blocks = append(fn.Blocks, b)
		mod.Funcs = append(mod.Funcs, fn)
	}
	good := ir.NewFunc("ok", ir.I32)
	gb := good.NewBlock()
	ret := &ir.Node{Op: ir.Ret, Type: ir.I32}
	ret.Kids = []*ir.Node{ir.NewConst(ir.I32, 7)}
	gb.Stmts = append(gb.Stmts, ret)
	good.Blocks = append(good.Blocks, gb)
	mod.Funcs = append(mod.Funcs, good)
	return mod
}

// TestDiagnosticsReportAllFailures checks that a module with two
// independently broken functions reports BOTH failures in one run, with
// function and phase attribution, instead of aborting at the first.
func TestDiagnosticsReportAllFailures(t *testing.T) {
	m, err := targets.Load("r2000")
	if err != nil {
		t.Fatal(err)
	}
	_, err = driver.CompileModule(m, brokenModule("bad1", "bad2"), driver.Config{
		Strategy: strategy.Postpass,
	})
	if err == nil {
		t.Fatal("expected compilation failure")
	}
	var diags *pipeline.Diagnostics
	if !errors.As(err, &diags) {
		t.Fatalf("error is %T, want *pipeline.Diagnostics: %v", err, err)
	}
	all := diags.All()
	if len(all) != 2 {
		t.Fatalf("diagnostics = %d, want 2: %v", len(all), err)
	}
	for i, want := range []string{"bad1", "bad2"} {
		if all[i].Func != want {
			t.Errorf("diagnostic %d for %q, want %q", i, all[i].Func, want)
		}
		if all[i].Phase != "select" {
			t.Errorf("diagnostic %d phase %q, want %q", i, all[i].Phase, "select")
		}
	}
}

// TestPhaseTimesPopulated checks the per-phase timing sink survives the
// trip through the pool.
func TestPhaseTimesPopulated(t *testing.T) {
	c, err := driver.Compile("par.c", parProg, driver.Config{
		Target: "r2000", Strategy: strategy.Postpass,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"xform", "select", "strategy"} {
		if _, ok := c.PhaseTimes[phase]; !ok {
			t.Errorf("no timing recorded for phase %q (have %v)", phase, c.PhaseTimes)
		}
	}
}
