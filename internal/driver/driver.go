// Package driver ties Marion's phases into a compiler pipeline:
// C source -> front end -> IL -> glue transform -> instruction selection
// -> code generation strategy (scheduling + register allocation) ->
// target program.
package driver

import (
	"fmt"

	"marion/internal/asm"
	"marion/internal/cc"
	"marion/internal/ilgen"
	"marion/internal/ir"
	"marion/internal/mach"
	"marion/internal/sel"
	"marion/internal/strategy"
	"marion/internal/targets"
	"marion/internal/xform"
)

// DataBase is the absolute address where globals are laid out.
const DataBase = 0x2000

// Config selects a target and a strategy.
type Config struct {
	Target   string
	Strategy strategy.Kind
	Options  strategy.Options
}

// Compiled is the result of one compilation.
type Compiled struct {
	Machine *mach.Machine
	Module  *ir.Module
	Prog    *asm.Program
	Stats   map[string]*strategy.Stats
}

// Compile compiles a C translation unit for the configured target.
func Compile(name, src string, cfg Config) (*Compiled, error) {
	m, err := targets.Load(cfg.Target)
	if err != nil {
		return nil, err
	}
	file, err := cc.Compile(name, src)
	if err != nil {
		return nil, err
	}
	mod, err := ilgen.Lower(file)
	if err != nil {
		return nil, err
	}
	return CompileModule(m, mod, cfg)
}

// CompileModule runs the back end on an already-lowered module.
func CompileModule(m *mach.Machine, mod *ir.Module, cfg Config) (*Compiled, error) {
	out := &Compiled{
		Machine: m,
		Module:  mod,
		Prog:    &asm.Program{Machine: m, Name: mod.Name},
		Stats:   map[string]*strategy.Stats{},
	}

	// Data layout: globals at absolute addresses from DataBase.
	addr := DataBase
	for _, g := range mod.Globals {
		if g.Kind == ir.SymFunc {
			continue
		}
		if addr%8 != 0 {
			addr += 8 - addr%8
		}
		g.Offset = addr
		size := g.Size
		if size == 0 {
			size = 8
		}
		addr += size
		out.Prog.Globals = append(out.Prog.Globals, g)
	}

	for _, fn := range mod.Funcs {
		xform.Apply(m, fn)
		af, err := sel.Select(m, fn)
		if err != nil {
			return nil, fmt.Errorf("%s: selection: %w", fn.Name, err)
		}
		st, err := strategy.Apply(m, af, cfg.Strategy, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("%s: %s strategy: %w", fn.Name, cfg.Strategy, err)
		}
		out.Stats[fn.Name] = st
		out.Prog.Funcs = append(out.Prog.Funcs, af)
	}
	return out, nil
}
