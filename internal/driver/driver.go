// Package driver ties Marion's phases into a compiler pipeline:
// C source -> front end -> IL -> back end pipeline (glue transform ->
// instruction selection -> code generation strategy: scheduling +
// register allocation) -> target program.
//
// The back end runs as an explicit pipeline (internal/pipeline) over
// the module's functions with a bounded worker pool; results commit in
// source order, so the emitted assembly is byte-identical whatever the
// worker count, and per-function failures are accumulated as structured
// diagnostics instead of aborting at the first error.
package driver

import (
	"context"
	"time"

	"marion/internal/asm"
	"marion/internal/cache"
	"marion/internal/cc"
	"marion/internal/faults"
	"marion/internal/ilgen"
	"marion/internal/iltext"
	"marion/internal/ir"
	"marion/internal/mach"
	"marion/internal/pipeline"
	"marion/internal/sel"
	"marion/internal/strategy"
	"marion/internal/targets"
	"marion/internal/trace"
	"marion/internal/verify"
)

// DataBase is the absolute address where globals are laid out.
const DataBase = 0x2000

// Config selects a target and a strategy.
type Config struct {
	Target   string
	Strategy strategy.Kind
	Options  strategy.Options
	// LinearSelect disables the selection template index and memo
	// caches (the brute-force reference path; see sel.Options.Linear).
	LinearSelect bool
	// Verify runs the machine-description-driven verifier
	// (internal/verify) over every compiled function; the merged
	// findings land in Compiled.Verify. Findings are not compile
	// errors — callers decide whether they are fatal.
	Verify bool
	// Workers bounds the per-function back end worker pool;
	// <= 0 means runtime.GOMAXPROCS(0). Output is identical for any
	// worker count.
	Workers int
	// Budget is the per-function wall-clock deadline (0 = none); see
	// pipeline.Config.Budget.
	Budget time.Duration
	// Strict disables the graceful-degradation ladder: failures are
	// reported instead of retried on weaker strategies.
	Strict bool
	// Faults arms the deterministic fault-injection harness.
	Faults *faults.Set
	// Cache, when non-nil, is the content-addressed compilation cache
	// consulted per function before the back end runs; see
	// pipeline.Config.Cache for the admission policy.
	Cache *cache.Cache
	// CacheOnly serves functions exclusively from the cache; misses
	// become pipeline.ErrCacheOnlyMiss diagnostics instead of compiles.
	// The server's deepest brownout level.
	CacheOnly bool
	// Span, when non-nil, is the parent trace span for the back end run;
	// see pipeline.Config.Span. Nil means tracing is off.
	Span *trace.Span
}

// Compiled is the result of one compilation.
type Compiled struct {
	Machine *mach.Machine
	Module  *ir.Module
	Prog    *asm.Program
	Stats   map[string]*strategy.Stats
	// PhaseTimes sums back end wall time per pipeline phase across all
	// functions (under parallel compilation the sum can exceed the
	// elapsed wall time). Only the accepted attempt of each function is
	// counted — a function that walked the degradation ladder reports
	// the rung that produced its code, so per-phase times describe the
	// emitted program; ladder overhead is in RetryTime.
	PhaseTimes map[string]time.Duration
	// RetryTime sums the wall time failed degradation-ladder attempts
	// spent before the accepted rung (zero when nothing degraded).
	RetryTime time.Duration
	// Sel sums the selection work counters across all functions
	// (summed in deterministic source order).
	Sel sel.Counters
	// Verify merges every function's verifier findings (source order);
	// non-nil exactly when Config.Verify was set.
	Verify *verify.Report
	// Degradations lists, in source order, every function the
	// degradation ladder emitted via a fallback rung (each one
	// re-verified clean before acceptance).
	Degradations []pipeline.Degradation
	// CacheHits counts functions served from the compilation cache
	// without running any pipeline phase.
	CacheHits int
}

// Compile compiles a C translation unit for the configured target.
func Compile(name, src string, cfg Config) (*Compiled, error) {
	return CompileCtx(context.Background(), name, src, cfg)
}

// CompileCtx is Compile with cancellation: the context reaches the
// scheduler and allocator cycle loops through the pipeline, so a
// cancelled caller (an HTTP request, a deadline) stops the back end
// instead of waiting for it.
func CompileCtx(ctx context.Context, name, src string, cfg Config) (*Compiled, error) {
	m, err := targets.Load(cfg.Target)
	if err != nil {
		return nil, err
	}
	mod, err := Frontend(name, src)
	if err != nil {
		return nil, err
	}
	return CompileModuleCtx(ctx, m, mod, cfg)
}

// CompileIL compiles textual IL (see internal/iltext) for the
// configured target, bypassing the C front end.
func CompileIL(name, src string, cfg Config) (*Compiled, error) {
	return CompileILCtx(context.Background(), name, src, cfg)
}

// CompileILCtx is CompileIL with cancellation.
func CompileILCtx(ctx context.Context, name, src string, cfg Config) (*Compiled, error) {
	m, err := targets.Load(cfg.Target)
	if err != nil {
		return nil, err
	}
	mod, err := iltext.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return CompileModuleCtx(ctx, m, mod, cfg)
}

// Frontend runs the C front end alone: source text to a lowered IL
// module, ready for CompileModule (or iltext.Print).
func Frontend(name, src string) (*ir.Module, error) {
	file, err := cc.Compile(name, src)
	if err != nil {
		return nil, err
	}
	return ilgen.Lower(file)
}

// CompileModule runs the back end on an already-lowered module.
func CompileModule(m *mach.Machine, mod *ir.Module, cfg Config) (*Compiled, error) {
	return CompileModuleCtx(context.Background(), m, mod, cfg)
}

// CompileModuleCtx is CompileModule with cancellation. When any
// function fails, the returned error is a *pipeline.Diagnostics listing
// every failing function with its phase.
func CompileModuleCtx(ctx context.Context, m *mach.Machine, mod *ir.Module, cfg Config) (*Compiled, error) {
	out := &Compiled{
		Machine:    m,
		Module:     mod,
		Prog:       &asm.Program{Machine: m, Name: mod.Name},
		Stats:      map[string]*strategy.Stats{},
		PhaseTimes: map[string]time.Duration{},
	}

	// Data layout: globals at absolute addresses from DataBase.
	addr := DataBase
	for _, g := range mod.Globals {
		if g.Kind == ir.SymFunc {
			continue
		}
		if addr%8 != 0 {
			addr += 8 - addr%8
		}
		g.Offset = addr
		size := g.Size
		if size == 0 {
			size = 8
		}
		addr += size
		out.Prog.Globals = append(out.Prog.Globals, g)
	}

	p := pipeline.Backend()
	results, diags := p.Run(ctx, m, mod.Funcs, pipeline.Config{
		Strategy:     cfg.Strategy,
		Options:      cfg.Options,
		LinearSelect: cfg.LinearSelect,
		Verify:       cfg.Verify,
		Workers:      cfg.Workers,
		Budget:       cfg.Budget,
		Strict:       cfg.Strict,
		Faults:       cfg.Faults,
		Cache:        cfg.Cache,
		CacheOnly:    cfg.CacheOnly,
		Span:         cfg.Span,
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}
	if cfg.Verify {
		out.Verify = &verify.Report{}
	}
	for _, r := range results {
		out.Stats[r.IR.Name] = r.Stats
		out.Prog.Funcs = append(out.Prog.Funcs, r.Func)
		out.Sel.Add(r.Sel)
		if out.Verify != nil {
			out.Verify.Merge(r.Verify)
		}
		if r.Fallback != nil {
			out.Degradations = append(out.Degradations, *r.Fallback)
		}
		if r.CacheHit {
			out.CacheHits++
		}
		// A Result's timings include every ladder attempt; attribute
		// only the accepted one to the per-phase totals so a degraded
		// function is not double-counted across rungs.
		accepted := 0
		if r.Fallback != nil {
			accepted = r.Fallback.Attempts - 1
		}
		for _, pt := range r.Timings {
			if pt.Attempt == accepted {
				out.PhaseTimes[pt.Phase] += pt.Time
			} else {
				out.RetryTime += pt.Time
			}
		}
	}
	return out, nil
}
