# Tier-1 verification plus the concurrency guardrails for the parallel
# per-function back end. `make ci` is what CI (and ROADMAP.md's tier-1
# line) runs.

GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector is the guardrail for the parallel back end.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem

ci: build vet test race
