# Tier-1 verification plus the concurrency guardrails for the parallel
# per-function back end. `make ci` is what CI (and ROADMAP.md's tier-1
# line) runs.

GO ?= go

.PHONY: build test vet race bench benchsmoke cachesmoke loadsmoke brownoutsmoke tracesmoke verify-all chaos ci

TARGETS    := r2000 r2000s m88000 i860 rs6000 toyp
STRATEGIES := naive postpass ips rase local

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector is the guardrail for the parallel back end.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem
	$(GO) run ./cmd/marionstats -cachestats -benchjson BENCH_cache.json

# One-iteration benchmark pass: keeps BenchmarkSelect /
# BenchmarkParallelBackend and friends compiling and running under CI
# without paying for real measurement.
benchsmoke:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

# Compilation-cache smoke: one cold/warm Livermore pass per strategy at
# a single worker count; byte-identical warm output and a full hit rate
# are enforced inside the bench (a violation is a non-zero exit).
cachesmoke:
	$(GO) run ./cmd/marionstats -cachestats -workers 4

# Emitted-code verification sweep: the machine-description-driven
# verifier (internal/verify) over the Livermore suite and every
# examples/c source, on every target under every strategy. Expected
# output is an all-zero finding matrix; any finding fails the build.
verify-all:
	$(GO) run ./cmd/marionstats -verify
	@for f in examples/c/*.c; do \
	  for t in $(TARGETS); do \
	    for s in $(STRATEGIES); do \
	      $(GO) run ./cmd/marionc -target $$t -strategy $$s -verify $$f > /dev/null \
	        || { echo "verify-all: $$f $$t/$$s FAILED"; exit 1; }; \
	    done; \
	  done; \
	  echo "verify-all: $$f clean on all targets/strategies"; \
	done

# Compile-service smoke: boot a race-instrumented mariond on an
# ephemeral port, burst it past its admission budget (asserting a clean
# 2xx/429 split and byte-identical repeat bodies), byte-compare served
# assembly against marionc for every example source, then SIGTERM and
# require a clean drain with a flushed disk cache tier. Emits
# BENCH_serve.json.
loadsmoke:
	GO="$(GO)" sh scripts/loadsmoke.sh

# Overload smoke: boot a race-instrumented mariond with the adaptive
# limiter, brownout ladder, and circuit breakers armed (plus a
# deterministic serve-site fault against r2000/rase), trip a breaker
# and require rerouting plus a replayable quarantine bundle, burst 4x
# past capacity with mixed deadlines and require brownout engagement,
# a clean shed (no 5xx storm), and full recovery to pressure level 0;
# post-recovery output must again be byte-identical to marionc. Emits
# BENCH_brownout.json.
brownoutsmoke:
	GO="$(GO)" sh scripts/brownoutsmoke.sh

# Observability smoke: boot a race-instrumented mariond with a trace
# ring, a 100ms trace SLO, a JSON access log, and one deterministic
# serve-site hang; burst it and require that /metrics parses as
# Prometheus text exposition, /tracez retains the SLO-breaching
# expired trace with a >=95%-coverage span tree, every access-log line
# is JSON carrying the slow request's ID exactly once, and output is
# byte-identical to marionc with tracing on and off (-trace-ring 0).
tracesmoke:
	GO="$(GO)" sh scripts/tracesmoke.sh

# Chaos sweep: arm every fault-injection site x mode (panic, err, hang)
# on every target under every strategy and prove the process never
# dies — each faulted function walks the degradation ladder and the
# fallback output re-verifies clean. Any outright failure or verifier
# finding fails the build.
chaos:
	$(GO) run ./cmd/marionstats -faultmatrix

ci: build vet test race benchsmoke cachesmoke loadsmoke brownoutsmoke tracesmoke verify-all chaos
