# Tier-1 verification plus the concurrency guardrails for the parallel
# per-function back end. `make ci` is what CI (and ROADMAP.md's tier-1
# line) runs.

GO ?= go

.PHONY: build test vet race bench benchsmoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector is the guardrail for the parallel back end.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem

# One-iteration benchmark pass: keeps BenchmarkSelect /
# BenchmarkParallelBackend and friends compiling and running under CI
# without paying for real measurement.
benchsmoke:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

ci: build vet test race benchsmoke
