// Command marionload is a concurrent load generator for mariond.
//
// Usage:
//
//	marionload -addr 127.0.0.1:8527 -n 200 -c 16
//	marionload -addr $ADDR -n 400 -c 32 -json BENCH_serve.json
//	marionload -addr $ADDR -one examples/c/livermore.c -target r2000
//
// The default mode fires -n compile requests from -c concurrent
// clients, cycling through the shipped example sources, the configured
// targets and strategies, and reports throughput, client-observed
// latency quantiles (p50/p99), the 2xx/429/other split, and the
// server's cache hit rate (read from /statz). With -json the same
// numbers are written as a benchmark artifact.
//
// -check repeats every distinct request key and fails if the server
// ever answers the same key with different assembly bytes (the cache
// must be invisible). -require-shed fails the run if the server never
// shed load — used by the load smoke to prove admission control
// actually engaged.
//
// -one sends a single request and prints the returned assembly to
// stdout, so scripts can byte-compare served output against marionc.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marion/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Report is the BENCH_serve.json artifact.
type Report struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"throughput_rps"`

	OK    int `json:"ok"`    // 2xx
	Shed  int `json:"shed"`  // 429
	Other int `json:"other"` // anything else (failures)

	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`

	// ShedRate is shed / requests; HitRate is the server's cache hits
	// over lookups at the end of the run (from /statz).
	ShedRate float64 `json:"shed_rate"`
	HitRate  float64 `json:"hit_rate"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marionload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8527", "mariond address (host:port)")
	n := fs.Int("n", 100, "total requests")
	c := fs.Int("c", 8, "concurrent clients")
	jsonOut := fs.String("json", "", "write the report as JSON to this file")
	targetList := fs.String("targets", "r2000,m88000", "comma-separated targets to cycle")
	stratList := fs.String("strategies", "postpass", "comma-separated strategies to cycle")
	srcGlob := fs.String("sources", "", "glob of .c sources to cycle (default: built-in snippets)")
	deadlineMs := fs.Int("deadline", 0, "per-request deadline header in ms (0 = server default)")
	check := fs.Bool("check", false, "repeat each distinct request and require byte-identical bodies")
	requireShed := fs.Bool("require-shed", false, "fail unless at least one request was shed (429)")
	one := fs.String("one", "", "send one request for this .c file and print the assembly")
	oneTarget := fs.String("target", "r2000", "target for -one")
	oneStrategy := fs.String("strategy", "postpass", "strategy for -one")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := "http://" + *addr

	if *one != "" {
		return runOne(base, *one, *oneTarget, *oneStrategy, stdout, stderr)
	}

	srcs, err := loadSources(*srcGlob)
	if err != nil {
		fmt.Fprintln(stderr, "marionload:", err)
		return 1
	}
	targets := splitList(*targetList)
	strats := splitList(*stratList)

	type job struct {
		body []byte
		key  string
	}
	jobs := make([]job, *n)
	for i := range jobs {
		src := srcs[i%len(srcs)]
		target := targets[(i/len(srcs))%len(targets)]
		strat := strats[(i/len(srcs)/len(targets))%len(strats)]
		body, _ := json.Marshal(server.CompileRequest{
			Source:   src.text,
			Filename: src.name,
			Target:   target,
			Strategy: strat,
		})
		jobs[i] = job{body: body, key: src.name + "|" + target + "|" + strat}
	}

	var (
		mu        sync.Mutex
		latencies []float64
		bodies    = map[string][]byte{} // key -> first OK assembly (-check)
		ok, shed  atomic.Int64
		other     atomic.Int64
		mismatch  atomic.Int64
		next      atomic.Int64
	)
	client := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				t0 := time.Now()
				status, body := post(client, base, jobs[i].body, *deadlineMs, stderr)
				lat := time.Since(t0)
				switch {
				case status >= 200 && status < 300:
					ok.Add(1)
					mu.Lock()
					latencies = append(latencies, float64(lat)/float64(time.Millisecond))
					if *check {
						var resp server.CompileResponse
						if json.Unmarshal(body, &resp) == nil {
							if prev, seen := bodies[jobs[i].key]; !seen {
								bodies[jobs[i].key] = []byte(resp.Assembly)
							} else if !bytes.Equal(prev, []byte(resp.Assembly)) {
								mismatch.Add(1)
							}
						}
					}
					mu.Unlock()
				case status == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Requests:    *n,
		Concurrency: *c,
		Seconds:     elapsed.Seconds(),
		OK:          int(ok.Load()),
		Shed:        int(shed.Load()),
		Other:       int(other.Load()),
		ShedRate:    float64(shed.Load()) / float64(*n),
	}
	if rep.Seconds > 0 {
		rep.Throughput = float64(*n) / rep.Seconds
	}
	sort.Float64s(latencies)
	rep.P50Ms = quantile(latencies, 0.50)
	rep.P99Ms = quantile(latencies, 0.99)
	rep.HitRate = fetchHitRate(client, base, stderr)

	fmt.Fprintf(stdout,
		"marionload: %d requests, %d clients, %.2fs (%.1f rps)\n"+
			"  2xx %d, 429 %d, other %d (shed rate %.2f)\n"+
			"  latency p50 %.1fms p99 %.1fms, server cache hit rate %.2f\n",
		rep.Requests, rep.Concurrency, rep.Seconds, rep.Throughput,
		rep.OK, rep.Shed, rep.Other, rep.ShedRate,
		rep.P50Ms, rep.P99Ms, rep.HitRate)

	if *jsonOut != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "marionload:", err)
			return 1
		}
	}
	if mismatch.Load() > 0 {
		fmt.Fprintf(stderr, "marionload: FAIL: %d non-identical repeat responses\n", mismatch.Load())
		return 1
	}
	if *requireShed && rep.Shed == 0 {
		fmt.Fprintln(stderr, "marionload: FAIL: no request was shed (admission control never engaged)")
		return 1
	}
	if rep.Other > 0 {
		fmt.Fprintf(stderr, "marionload: FAIL: %d request(s) neither 2xx nor 429\n", rep.Other)
		return 1
	}
	return 0
}

// runOne sends a single compile and prints the assembly, for scripts
// that byte-compare served output against marionc.
func runOne(base, file, target, strat string, stdout, stderr io.Writer) int {
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(stderr, "marionload:", err)
		return 1
	}
	body, _ := json.Marshal(server.CompileRequest{
		Source: string(src), Filename: file, Target: target, Strategy: strat,
	})
	client := &http.Client{Timeout: 5 * time.Minute}
	status, respBody := post(client, base, body, 0, stderr)
	if status != http.StatusOK {
		fmt.Fprintf(stderr, "marionload: status %d: %s\n", status, respBody)
		return 1
	}
	var resp server.CompileResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		fmt.Fprintln(stderr, "marionload:", err)
		return 1
	}
	fmt.Fprint(stdout, resp.Assembly)
	return 0
}

func post(client *http.Client, base string, body []byte, deadlineMs int, stderr io.Writer) (int, []byte) {
	req, err := http.NewRequest(http.MethodPost, base+"/compile", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(stderr, "marionload:", err)
		return 0, nil
	}
	req.Header.Set("Content-Type", "application/json")
	if deadlineMs > 0 {
		req.Header.Set(server.DeadlineHeader, fmt.Sprint(deadlineMs))
	}
	resp, err := client.Do(req)
	if err != nil {
		fmt.Fprintln(stderr, "marionload:", err)
		return 0, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// fetchHitRate reads the server's cache stats from /statz.
func fetchHitRate(client *http.Client, base string, stderr io.Writer) float64 {
	resp, err := client.Get(base + "/statz")
	if err != nil {
		fmt.Fprintln(stderr, "marionload: statz:", err)
		return 0
	}
	defer resp.Body.Close()
	var st server.Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0
	}
	lookups := st.Cache.Hits() + st.Cache.Misses
	if lookups == 0 {
		return 0
	}
	return float64(st.Cache.Hits()) / float64(lookups)
}

type source struct{ name, text string }

// loadSources reads the cycle set: a glob, or small built-in snippets
// so the tool works with no checkout around it.
func loadSources(glob string) ([]source, error) {
	if glob == "" {
		return []source{
			{"load0.c", "int f0(int a, int b) { return a * b + 7; }\n"},
			{"load1.c", "int f1(int n) { int s; int i; s = 0; for (i = 0; i < n; i = i + 1) s = s + i * i; return s; }\n"},
			{"load2.c", "double f2(double x) { return x * x - 2.0 * x + 1.0; }\n"},
		}, nil
	}
	files, err := filepath.Glob(glob)
	if err != nil || len(files) == 0 {
		return nil, fmt.Errorf("no sources match %q (%v)", glob, err)
	}
	var out []source
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		out = append(out, source{f, string(b)})
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// quantile returns the q-th quantile of sorted xs (nearest rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q*float64(len(xs)-1) + 0.5)
	return xs[i]
}
