// Command marionload is a concurrent load generator for mariond.
//
// Usage:
//
//	marionload -addr 127.0.0.1:8527 -n 200 -c 16
//	marionload -addr $ADDR -n 400 -c 32 -json BENCH_serve.json
//	marionload -addr $ADDR -n 300 -c 24 -deadlines 30,5000 -require-brownout
//	marionload -addr $ADDR -one examples/c/livermore.c -target r2000
//
// The default mode fires -n compile requests from -c concurrent
// clients, cycling through the shipped example sources, the configured
// targets and strategies, and reports throughput, client-observed
// latency quantiles (p50/p99), the 2xx/429/other split, and the
// server's cache hit rate (read from /statz). With -json the same
// numbers are written as a benchmark artifact.
//
// Requests go through internal/client, so -retries, -backoff, and
// -hedge exercise the resilient-client path: shed requests back off
// per the server's computed Retry-After, and hedged requests race a
// second attempt against tail latency. -deadlines cycles a mix of
// per-request deadlines to provoke deadline-aware queue eviction.
//
// -check repeats every distinct request key and fails if the server
// ever answers the same key with different assembly bytes (the cache
// must be invisible). -require-shed fails the run if the server never
// shed load; -require-brownout and -require-reroute likewise require
// that the brownout ladder engaged or a circuit breaker rerouted a
// request. -recover waits after the burst until the server reports
// pressure level 0 again, failing if it never does. -max-other
// tolerates a bounded number of non-2xx/429 answers (chaos drills
// inject real failures).
//
// -one sends a single request and prints the returned assembly to
// stdout, so scripts can byte-compare served output against marionc.
//
// Every answer carries the server-echoed X-Marion-Request-Id; after a
// burst, -slowest N lists the IDs of the N slowest answered requests
// so they can be looked up in the server's trace ring
// (GET /tracez?id=<id>). -tracecheck skips the burst and instead
// audits the server's observability surface: GET /metrics must parse
// as Prometheus text exposition and include the request counter,
// GET /tracez must retain an SLO-breaching expired trace whose span
// tree covers >=95% of its wall time, and — with -accesslog FILE —
// every access-log line must be valid JSON carrying that trace's
// request ID exactly once.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marion/internal/client"
	"marion/internal/metrics"
	"marion/internal/server"
	"marion/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Report is the BENCH_serve.json artifact.
type Report struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"throughput_rps"`

	OK    int `json:"ok"`    // 2xx
	Shed  int `json:"shed"`  // 429 as the final answer
	Other int `json:"other"` // anything else (failures)

	// TransientSheds counts 429s the client retried into an eventual
	// success — the server shed, even though no request failed for it.
	TransientSheds int `json:"transient_sheds"`

	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`

	// ShedRate is shed / requests; HitRate is the server's cache hits
	// over lookups at the end of the run (from /statz).
	ShedRate float64 `json:"shed_rate"`
	HitRate  float64 `json:"hit_rate"`

	// Client-side resilience counters.
	Retries int `json:"retries"` // backoff rounds taken across all requests
	Hedged  int `json:"hedged"`  // requests won by a hedge

	// Overload-behavior counters observed during the run.
	Degraded    int `json:"degraded"`     // 2xx answers compiled at brownout level > 0
	BrownoutMax int `json:"brownout_max"` // highest brownout level seen in any answer
	Rerouted    int `json:"rerouted"`     // answers rerouted by a circuit breaker

	// Server-side state read from /statz after the run (and after
	// -recover's wait, when set).
	Evicted            int64 `json:"evicted"`              // doomed requests shed from the queue
	BreakersOpen       int   `json:"breakers_open"`        // breakers still open at the end
	FinalPressureLevel int   `json:"final_pressure_level"` // brownout level at the end
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marionload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8527", "mariond address (host:port)")
	n := fs.Int("n", 100, "total requests")
	c := fs.Int("c", 8, "concurrent clients")
	jsonOut := fs.String("json", "", "write the report as JSON to this file")
	targetList := fs.String("targets", "r2000,m88000", "comma-separated targets to cycle")
	stratList := fs.String("strategies", "postpass", "comma-separated strategies to cycle")
	srcGlob := fs.String("sources", "", "glob of .c sources to cycle (default: built-in snippets)")
	deadlineMs := fs.Int("deadline", 0, "per-request deadline header in ms (0 = server default)")
	deadlines := fs.String("deadlines", "",
		"comma-separated deadline ms values cycled across requests (overrides -deadline)")
	retries := fs.Int("retries", 0, "client retries per request on shed/unavailable answers")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "base client backoff between retries")
	hedge := fs.Duration("hedge", 0, "hedge delay: race a second request after this wait (0 = off)")
	check := fs.Bool("check", false, "repeat each distinct request and require byte-identical bodies")
	requireShed := fs.Bool("require-shed", false, "fail unless at least one request was shed (429)")
	requireBrownout := fs.Bool("require-brownout", false,
		"fail unless at least one answer was compiled under brownout (level > 0)")
	requireReroute := fs.Bool("require-reroute", false,
		"fail unless at least one answer was rerouted by a circuit breaker")
	recoverWait := fs.Duration("recover", 0,
		"after the burst, wait up to this long for the server to report pressure level 0")
	maxOther := fs.Int("max-other", 0, "tolerate up to this many non-2xx/429 answers")
	one := fs.String("one", "", "send one request for this .c file and print the assembly")
	oneTarget := fs.String("target", "r2000", "target for -one")
	oneStrategy := fs.String("strategy", "postpass", "strategy for -one")
	slowest := fs.Int("slowest", 5,
		"after the burst, print the request IDs of the N slowest answered requests")
	tracecheck := fs.Bool("tracecheck", false,
		"audit the server's /metrics and /tracez surfaces instead of running a burst")
	accessLogPath := fs.String("accesslog", "",
		"with -tracecheck: the server's JSON access log file to cross-check against /tracez")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := "http://" + *addr

	if *tracecheck {
		return runTraceCheck(base, *accessLogPath, stdout, stderr)
	}

	cl := client.New(client.Config{
		BaseURL:     base,
		HTTPClient:  &http.Client{Timeout: 5 * time.Minute},
		MaxRetries:  *retries,
		BaseBackoff: *backoff,
		Hedge:       *hedge,
	})

	if *one != "" {
		return runOne(cl, *one, *oneTarget, *oneStrategy, stdout, stderr)
	}

	deadlineList, err := parseDeadlines(*deadlines, *deadlineMs)
	if err != nil {
		fmt.Fprintln(stderr, "marionload:", err)
		return 2
	}

	srcs, err := loadSources(*srcGlob)
	if err != nil {
		fmt.Fprintln(stderr, "marionload:", err)
		return 1
	}
	targets := splitList(*targetList)
	strats := splitList(*stratList)

	type job struct {
		req      *server.CompileRequest
		key      string
		deadline time.Duration
	}
	jobs := make([]job, *n)
	for i := range jobs {
		src := srcs[i%len(srcs)]
		target := targets[(i/len(srcs))%len(targets)]
		strat := strats[(i/len(srcs)/len(targets))%len(strats)]
		jobs[i] = job{
			req: &server.CompileRequest{
				Source:   src.text,
				Filename: src.name,
				Target:   target,
				Strategy: strat,
			},
			key:      src.name + "|" + target + "|" + strat,
			deadline: deadlineList[i%len(deadlineList)],
		}
	}

	var (
		mu          sync.Mutex
		latencies   []float64
		samples     []sample              // every answered request, 2xx or not
		bodies      = map[string][]byte{} // key -> first OK assembly (-check)
		brownoutMax int
		ok, shed    atomic.Int64
		other       atomic.Int64
		mismatch    atomic.Int64
		retried     atomic.Int64
		sheds       atomic.Int64
		hedged      atomic.Int64
		degraded    atomic.Int64
		rerouted    atomic.Int64
		next        atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				t0 := time.Now()
				res, err := cl.Compile(context.Background(), jobs[i].req, jobs[i].deadline)
				lat := time.Since(t0)
				if err != nil {
					fmt.Fprintln(stderr, "marionload:", err)
					other.Add(1)
					continue
				}
				retried.Add(int64(res.Retries))
				sheds.Add(int64(res.Sheds))
				if res.Hedged {
					hedged.Add(1)
				}
				mu.Lock()
				samples = append(samples, sample{
					ms:     float64(lat) / float64(time.Millisecond),
					id:     res.RequestID,
					status: res.Status,
				})
				mu.Unlock()
				switch {
				case res.Status >= 200 && res.Status < 300:
					ok.Add(1)
					if res.Resp != nil {
						if res.Resp.BrownoutLevel > 0 {
							degraded.Add(1)
						}
						if res.Resp.BreakerReroute != "" {
							rerouted.Add(1)
						}
					}
					mu.Lock()
					latencies = append(latencies, float64(lat)/float64(time.Millisecond))
					if res.Resp != nil && res.Resp.BrownoutLevel > brownoutMax {
						brownoutMax = res.Resp.BrownoutLevel
					}
					if *check && res.Resp != nil {
						if prev, seen := bodies[jobs[i].key]; !seen {
							bodies[jobs[i].key] = []byte(res.Resp.Assembly)
						} else if !bytes.Equal(prev, []byte(res.Resp.Assembly)) {
							mismatch.Add(1)
						}
					}
					mu.Unlock()
				case res.Status == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Requests:       *n,
		Concurrency:    *c,
		Seconds:        elapsed.Seconds(),
		OK:             int(ok.Load()),
		Shed:           int(shed.Load()),
		Other:          int(other.Load()),
		ShedRate:       float64(shed.Load()) / float64(*n),
		Retries:        int(retried.Load()),
		TransientSheds: int(sheds.Load()) - int(shed.Load()),
		Hedged:         int(hedged.Load()),
		Degraded:       int(degraded.Load()),
		BrownoutMax:    brownoutMax,
		Rerouted:       int(rerouted.Load()),
	}
	if rep.Seconds > 0 {
		rep.Throughput = float64(*n) / rep.Seconds
	}
	sort.Float64s(latencies)
	rep.P50Ms = quantile(latencies, 0.50)
	rep.P99Ms = quantile(latencies, 0.99)

	recovered := fillStatz(cl, &rep, *recoverWait, stderr)

	fmt.Fprintf(stdout,
		"marionload: %d requests, %d clients, %.2fs (%.1f rps)\n"+
			"  2xx %d, 429 %d (+%d transient), other %d (shed rate %.2f), retries %d, hedged %d\n"+
			"  latency p50 %.1fms p99 %.1fms, server cache hit rate %.2f\n"+
			"  brownout: %d degraded answers (max level %d), %d rerouted, %d evicted, "+
			"%d breakers open, final level %d\n",
		rep.Requests, rep.Concurrency, rep.Seconds, rep.Throughput,
		rep.OK, rep.Shed, rep.TransientSheds, rep.Other, rep.ShedRate, rep.Retries, rep.Hedged,
		rep.P50Ms, rep.P99Ms, rep.HitRate,
		rep.Degraded, rep.BrownoutMax, rep.Rerouted, rep.Evicted,
		rep.BreakersOpen, rep.FinalPressureLevel)
	printSlowest(stdout, samples, *slowest)

	if *jsonOut != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "marionload:", err)
			return 1
		}
	}
	if mismatch.Load() > 0 {
		fmt.Fprintf(stderr, "marionload: FAIL: %d non-identical repeat responses\n", mismatch.Load())
		return 1
	}
	if *requireShed && rep.Shed == 0 && rep.TransientSheds == 0 {
		fmt.Fprintln(stderr, "marionload: FAIL: no request was shed (admission control never engaged)")
		return 1
	}
	if *requireBrownout && rep.Degraded == 0 {
		fmt.Fprintln(stderr, "marionload: FAIL: no answer was compiled under brownout")
		return 1
	}
	if *requireReroute && rep.Rerouted == 0 {
		fmt.Fprintln(stderr, "marionload: FAIL: no answer was rerouted by a circuit breaker")
		return 1
	}
	if *recoverWait > 0 && !recovered {
		fmt.Fprintf(stderr, "marionload: FAIL: pressure level still %d after %v\n",
			rep.FinalPressureLevel, *recoverWait)
		return 1
	}
	if rep.Other > *maxOther {
		fmt.Fprintf(stderr, "marionload: FAIL: %d request(s) neither 2xx nor 429 (max %d)\n",
			rep.Other, *maxOther)
		return 1
	}
	return 0
}

// sample is one answered request: its client-observed latency, the
// server-echoed request ID, and the final HTTP status. Unlike the
// latency quantiles (2xx only), samples cover every answer so the
// slowest listing surfaces expired and failed requests too — those
// are exactly the ones worth pulling from /tracez.
type sample struct {
	ms     float64
	id     string
	status int
}

// printSlowest lists the n slowest answered requests with their
// request IDs, the handle into the server's trace ring.
func printSlowest(stdout io.Writer, samples []sample, n int) {
	if n <= 0 || len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].ms > samples[j].ms })
	if n > len(samples) {
		n = len(samples)
	}
	fmt.Fprintf(stdout, "  slowest %d (look up with GET /tracez?id=<id>):\n", n)
	for _, s := range samples[:n] {
		fmt.Fprintf(stdout, "    %8.1fms  status %d  id=%s\n", s.ms, s.status, s.id)
	}
}

// runTraceCheck audits the observability surface of a running mariond:
// /metrics must be valid Prometheus text exposition containing the
// request counter; /tracez must retain an SLO-breaching expired trace
// whose span tree accounts for >=95% of its wall time and includes the
// admission and compile spans; and, when an access log file is given,
// every line must be structured JSON and the slow trace's request ID
// must appear in exactly one line.
func runTraceCheck(base, accessLog string, stdout, stderr io.Writer) int {
	httpc := &http.Client{Timeout: 30 * time.Second}

	// 1. /metrics parses as Prometheus text exposition.
	body, err := fetch(httpc, base+"/metrics")
	if err != nil {
		fmt.Fprintln(stderr, "marionload: tracecheck:", err)
		return 1
	}
	nsamples, err := metrics.ParsePrometheusText(bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(stderr, "marionload: tracecheck: /metrics is not valid Prometheus text:", err)
		return 1
	}
	if !bytes.Contains(body, []byte("marion_server_requests")) {
		fmt.Fprintln(stderr, "marionload: tracecheck: /metrics lacks marion_server_requests")
		return 1
	}
	fmt.Fprintf(stdout, "marionload: tracecheck: /metrics ok (%d samples)\n", nsamples)

	// 2. /tracez retains a breaching expired trace with a full span tree.
	body, err = fetch(httpc, base+"/tracez")
	if err != nil {
		fmt.Fprintln(stderr, "marionload: tracecheck:", err)
		return 1
	}
	var tz server.Tracez
	if err := json.Unmarshal(body, &tz); err != nil {
		fmt.Fprintln(stderr, "marionload: tracecheck: /tracez:", err)
		return 1
	}
	var slow *trace.Summary
	for i := range tz.Traces {
		s := &tz.Traces[i]
		if s.Breach && s.Outcome == "expired" && (slow == nil || s.DurationUs > slow.DurationUs) {
			slow = s
		}
	}
	if slow == nil {
		fmt.Fprintf(stderr,
			"marionload: tracecheck: no SLO-breaching expired trace among %d retained\n",
			len(tz.Traces))
		return 1
	}
	body, err = fetch(httpc, base+"/tracez?id="+slow.ID)
	if err != nil {
		fmt.Fprintln(stderr, "marionload: tracecheck:", err)
		return 1
	}
	var tr trace.Trace
	if err := json.Unmarshal(body, &tr); err != nil {
		fmt.Fprintln(stderr, "marionload: tracecheck: /tracez?id:", err)
		return 1
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"admission", "compile"} {
		if !names[want] {
			fmt.Fprintf(stderr, "marionload: tracecheck: trace %s has no %q span\n", tr.ID, want)
			return 1
		}
	}
	if cov := tr.Coverage(); cov < 0.95 {
		fmt.Fprintf(stderr,
			"marionload: tracecheck: trace %s spans cover only %.0f%% of wall time\n",
			tr.ID, cov*100)
		return 1
	}
	fmt.Fprintf(stdout,
		"marionload: tracecheck: /tracez ok (slow trace %s: %.1fms, %d spans, %.0f%% covered)\n",
		tr.ID, float64(tr.DurationUs)/1e3, len(tr.Spans), tr.Coverage()*100)

	// 3. The access log is line-delimited JSON and carries the slow
	// trace's request ID exactly once.
	if accessLog == "" {
		return 0
	}
	if code := checkAccessLog(accessLog, tr.ID, stdout, stderr); code != 0 {
		return code
	}
	return 0
}

// checkAccessLog validates the structured access log: every line must
// be JSON with the required fields, and wantID must tag exactly one.
func checkAccessLog(path, wantID string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "marionload: tracecheck:", err)
		return 1
	}
	required := []string{"id", "status", "latency_ms", "outcome", "target", "strategy"}
	lines, hits := 0, 0
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines++
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			fmt.Fprintf(stderr, "marionload: tracecheck: access log line %d is not JSON: %v\n",
				lines, err)
			return 1
		}
		if msg, _ := rec["msg"].(string); msg != "access" {
			fmt.Fprintf(stderr, "marionload: tracecheck: access log line %d has msg=%q\n",
				lines, rec["msg"])
			return 1
		}
		for _, k := range required {
			if _, ok := rec[k]; !ok {
				fmt.Fprintf(stderr, "marionload: tracecheck: access log line %d lacks %q\n",
					lines, k)
				return 1
			}
		}
		if id, _ := rec["id"].(string); id == wantID {
			hits++
		}
	}
	if lines == 0 {
		fmt.Fprintf(stderr, "marionload: tracecheck: access log %s is empty\n", path)
		return 1
	}
	if hits != 1 {
		fmt.Fprintf(stderr,
			"marionload: tracecheck: request ID %s appears in %d access log lines (want 1)\n",
			wantID, hits)
		return 1
	}
	fmt.Fprintf(stdout, "marionload: tracecheck: access log ok (%d lines, id %s logged once)\n",
		lines, wantID)
	return 0
}

// fetch GETs a URL and returns the body, failing on non-200.
func fetch(httpc *http.Client, url string) ([]byte, error) {
	resp, err := httpc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// runOne sends a single compile and prints the assembly, for scripts
// that byte-compare served output against marionc.
func runOne(cl *client.Client, file, target, strat string, stdout, stderr io.Writer) int {
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(stderr, "marionload:", err)
		return 1
	}
	res, err := cl.Compile(context.Background(), &server.CompileRequest{
		Source: string(src), Filename: file, Target: target, Strategy: strat,
	}, 0)
	if err != nil {
		fmt.Fprintln(stderr, "marionload:", err)
		return 1
	}
	if res.Status != http.StatusOK || res.Resp == nil {
		msg := ""
		if res.ErrBody != nil {
			msg = res.ErrBody.Error
		}
		fmt.Fprintf(stderr, "marionload: status %d: %s\n", res.Status, msg)
		return 1
	}
	fmt.Fprint(stdout, res.Resp.Assembly)
	return 0
}

// fillStatz reads the server's end-of-run state into the report. With
// wait > 0 it polls until the server reports pressure level 0 (full
// brownout recovery) or the wait expires, and reports which happened.
func fillStatz(cl *client.Client, rep *Report, wait time.Duration, stderr io.Writer) bool {
	deadline := time.Now().Add(wait)
	recovered := false
	for {
		st, err := cl.Statz(context.Background())
		if err != nil {
			fmt.Fprintln(stderr, "marionload: statz:", err)
			return false
		}
		rep.Evicted = st.Evicted
		rep.FinalPressureLevel = st.PressureLevel
		rep.BreakersOpen = 0
		for _, state := range st.Breakers {
			if state == "open" {
				rep.BreakersOpen++
			}
		}
		if lookups := st.Cache.Hits() + st.Cache.Misses; lookups > 0 {
			rep.HitRate = float64(st.Cache.Hits()) / float64(lookups)
		}
		if st.PressureLevel == 0 {
			recovered = true
		}
		if recovered || wait <= 0 || time.Now().After(deadline) {
			return recovered
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// parseDeadlines builds the per-request deadline cycle: the -deadlines
// list when given, else the single -deadline value (possibly zero,
// meaning the server default).
func parseDeadlines(list string, single int) ([]time.Duration, error) {
	if list == "" {
		return []time.Duration{time.Duration(single) * time.Millisecond}, nil
	}
	var out []time.Duration
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		ms, err := strconv.Atoi(p)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("bad -deadlines entry %q", p)
		}
		out = append(out, time.Duration(ms)*time.Millisecond)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-deadlines given but empty")
	}
	return out, nil
}

type source struct{ name, text string }

// loadSources reads the cycle set: a glob, or small built-in snippets
// so the tool works with no checkout around it.
func loadSources(glob string) ([]source, error) {
	if glob == "" {
		return []source{
			{"load0.c", "int f0(int a, int b) { return a * b + 7; }\n"},
			{"load1.c", "int f1(int n) { int s; int i; s = 0; for (i = 0; i < n; i = i + 1) s = s + i * i; return s; }\n"},
			{"load2.c", "double f2(double x) { return x * x - 2.0 * x + 1.0; }\n"},
		}, nil
	}
	files, err := filepath.Glob(glob)
	if err != nil || len(files) == 0 {
		return nil, fmt.Errorf("no sources match %q (%v)", glob, err)
	}
	var out []source
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		out = append(out, source{f, string(b)})
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// quantile returns the q-th quantile of sorted xs (nearest rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q*float64(len(xs)-1) + 0.5)
	return xs[i]
}
