// Command marionsim compiles a C-subset program and executes one of its
// functions on Marion's description-driven cycle simulator, reporting
// the result and the timing statistics.
//
// Usage:
//
//	marionsim -target r2000 -call 'sum(100)' prog.c
//	marionsim -target i860 -strategy ips -cache -call 'kern(10)' loop7.c
//
// Arguments are integers or decimal floats; an initialization function
// can be run first with -init.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"marion/internal/core"
	"marion/internal/sim"
	"marion/internal/strategy"
)

func main() {
	target := flag.String("target", "r2000", "target machine")
	strat := flag.String("strategy", "postpass", "code generation strategy")
	call := flag.String("call", "", "function call, e.g. 'kern(4)'")
	initFn := flag.String("init", "", "initialization function to run first")
	cache := flag.Bool("cache", false, "enable the data cache model")
	trace := flag.Bool("trace", false, "trace issued instructions")
	flag.Parse()

	if flag.NArg() != 1 || *call == "" {
		fmt.Fprintln(os.Stderr, "usage: marionsim -call 'fn(args)' [-init init] [-cache] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	kind, err := strategy.ParseKind(*strat)
	if err != nil {
		fatal(err)
	}
	gen, err := core.New(*target, kind)
	if err != nil {
		fatal(err)
	}
	res, err := gen.Compile(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}

	opts := sim.Options{}
	if *cache {
		opts.Cache = sim.DefaultCache()
	}
	if *trace {
		opts.Trace = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	sess := core.NewSession(res.Program, opts)
	if *initFn != "" {
		if _, err := sess.Call(*initFn); err != nil {
			fatal(err)
		}
	}
	name, args, err := parseCall(*call)
	if err != nil {
		fatal(err)
	}
	st, err := sess.Call(name, args...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s -> int %d, double %g\n", *call, st.RetI, st.RetF)
	fmt.Printf("cycles %d, instructions %d, words %d", st.Cycles, st.Instrs, st.Words)
	if st.Loads > 0 {
		fmt.Printf(", loads %d (%d misses)", st.Loads, st.LoadMisses)
	}
	fmt.Println()
}

func parseCall(s string) (string, []sim.Value, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("bad call syntax %q (want fn(a,b))", s)
	}
	name := s[:open]
	inner := strings.TrimSuffix(s[open+1:], ")")
	var args []sim.Value
	if strings.TrimSpace(inner) != "" {
		for _, a := range strings.Split(inner, ",") {
			a = strings.TrimSpace(a)
			if strings.ContainsAny(a, ".eE") {
				f, err := strconv.ParseFloat(a, 64)
				if err != nil {
					return "", nil, err
				}
				args = append(args, sim.Float64(f))
			} else {
				i, err := strconv.ParseInt(a, 10, 64)
				if err != nil {
					return "", nil, err
				}
				args = append(args, sim.Int(i))
			}
		}
	}
	return name, args, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "marionsim:", err)
	os.Exit(1)
}
