// Command marionstats regenerates the paper's evaluation tables and
// figures (see EXPERIMENTS.md for the recorded outputs).
//
// Usage:
//
//	marionstats -table 1        # Maril description statistics
//	marionstats -table 2        # system source size
//	marionstats -table 3        # compile time and dilation
//	marionstats -table 4        # Livermore kernels, actual vs estimated
//	marionstats -speedup        # strategy comparison
//	marionstats -fig7           # i860 dual-operation schedule
//	marionstats -selstats       # selection index/memoization work counts
//	marionstats -verify         # emitted-code verification matrix (expect all-zero)
//	marionstats -faultmatrix    # chaos sweep: per-site/per-target degradation matrix
//	marionstats -cachestats     # compilation cache: cold vs warm Livermore compiles
//	marionstats -cachestats -benchjson BENCH_cache.json
//	marionstats -all
package main

import (
	"flag"
	"fmt"
	"os"

	"marion/internal/core"
	"marion/internal/experiments"
	"marion/internal/strategy"
)

func main() {
	table := flag.Int("table", 0, "regenerate table N (1-4)")
	speedup := flag.Bool("speedup", false, "strategy speedup comparison")
	fig7 := flag.Bool("fig7", false, "Figure 7: i860 dual-operation schedule")
	selstats := flag.Bool("selstats", false, "selection template-index and memoization work counts")
	verifyFlag := flag.Bool("verify", false,
		"run the emitted-code verifier over the Livermore suite on every target x strategy")
	faultmatrix := flag.Bool("faultmatrix", false,
		"chaos sweep: inject every fault site x mode on every target x strategy; any outright failure or verifier finding is fatal")
	cachestats := flag.Bool("cachestats", false,
		"compilation-cache bench: cold vs warm Livermore compiles (byte-identical output enforced)")
	benchjson := flag.String("benchjson", "",
		"with -cachestats, also write the rows as JSON to this file")
	all := flag.Bool("all", false, "everything")
	target := flag.String("target", "r2000", "target for tables 3/4, speedups and -cachestats")
	loops := flag.Int("loops", 1, "kernel repetition count")
	workers := flag.Int("workers", 0, "parallel back end workers (0 = GOMAXPROCS)")
	flag.Parse()

	ran := false
	run := func(name string, f func() error) {
		ran = true
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "marionstats: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *all || *table == 1 {
		run("table 1", func() error {
			rows, err := experiments.Table1()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable1(rows))
			return nil
		})
	}
	if *all || *table == 2 {
		run("table 2", func() error {
			rows, err := experiments.Table2(".")
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable2(rows))
			return nil
		})
	}
	if *all || *table == 3 {
		run("table 3", func() error {
			rows, err := experiments.Table3(
				[]string{"r2000", "i860"},
				[]strategy.Kind{strategy.Postpass, strategy.IPS, strategy.RASE},
				*workers)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable3(rows))
			return nil
		})
	}
	if *all || *table == 4 {
		run("table 4", func() error {
			rows, err := experiments.Table4(*target, *loops)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable4(rows))
			return nil
		})
	}
	if *all || *speedup {
		run("speedup", func() error {
			rows, err := experiments.Speedups(*target, *loops)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSpeedups(rows, *target))
			return nil
		})
	}
	if *all || *fig7 {
		run("figure 7", func() error {
			out, err := experiments.Figure7()
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	}
	if *all || *selstats {
		run("selstats", func() error {
			rows, err := experiments.SelectionStats([]string{"r2000", "m88000", "i860"}, *workers)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSelStats(rows))
			return nil
		})
	}
	if *all || *verifyFlag {
		run("verify", func() error {
			rows, err := experiments.VerifyMatrix(core.Targets(),
				[]strategy.Kind{strategy.Naive, strategy.Postpass, strategy.IPS,
					strategy.RASE, strategy.Local},
				*workers)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatVerifyMatrix(rows))
			for _, r := range rows {
				if r.Findings > 0 {
					return fmt.Errorf("%s/%s: %d finding(s)", r.Target, r.Strategy, r.Findings)
				}
			}
			return nil
		})
	}
	if *all || *faultmatrix {
		run("faultmatrix", func() error {
			tnames := core.Targets()
			cells, err := experiments.FaultMatrix(tnames,
				[]strategy.Kind{strategy.Naive, strategy.Postpass, strategy.IPS,
					strategy.RASE, strategy.Local},
				*workers)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFaultMatrix(cells, tnames))
			for _, c := range cells {
				if c.Failed > 0 || c.Findings > 0 {
					return fmt.Errorf("%s:%s %s/%s: %d failure(s), %d finding(s)",
						c.Site, c.Mode, c.Target, c.Strategy, c.Failed, c.Findings)
				}
			}
			return nil
		})
	}
	if *all || *cachestats {
		run("cachestats", func() error {
			// With an explicit -workers, bench just that pool size;
			// otherwise sweep the determinism-relevant counts.
			workersList := []int{1, 4, 8}
			if *workers != 0 {
				workersList = []int{*workers}
			}
			rows, err := experiments.CacheBench(*target,
				[]strategy.Kind{strategy.Postpass, strategy.RASE}, workersList)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatCacheBench(rows))
			if *benchjson != "" {
				return experiments.WriteCacheBenchJSON(*benchjson, rows)
			}
			return nil
		})
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
