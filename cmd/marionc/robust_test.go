package main

import (
	"strings"
	"testing"
)

const robustSrc = `
int one() { return 1; }
int two(int x) { return x + x; }
int three(int x, int y) { return x * y; }
`

// TestFaultDegradesWithNote pins the non-strict contract: an injected
// failure degrades down the ladder, the compile succeeds (exit 0, full
// assembly) and every degradation prints a note.
func TestFaultDegradesWithNote(t *testing.T) {
	file := writeTemp(t, "r.c", robustSrc)
	var out, errb strings.Builder
	code := run([]string{"-target", "r2000", "-faults", "select:panic@fn=one",
		"-verify", file}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "marionc: note: one: degraded postpass -> safe") {
		t.Errorf("missing degradation note:\n%s", errb.String())
	}
	for _, fn := range []string{"one:", "two:", "three:"} {
		if !strings.Contains(out.String(), fn) {
			t.Errorf("assembly missing %s\n%s", fn, out.String())
		}
	}
}

// TestStrictFaultFailsWithStack pins -strict: the same fault is a hard
// failure (exit 1) whose diagnostic carries the normalized panic stack.
func TestStrictFaultFailsWithStack(t *testing.T) {
	file := writeTemp(t, "r.c", robustSrc)
	var out, errb strings.Builder
	code := run([]string{"-target", "r2000", "-strict", "-faults",
		"select:panic@fn=one", file}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	got := errb.String()
	for _, want := range []string{
		"1 function(s) failed",
		"one: select: panic in select: injected panic at select (one)",
		"goroutine N", // normalized stack, printed indented
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stderr missing %q:\n%s", want, got)
		}
	}
}

// TestTimeoutConvertsHangs pins -timeout: a hang-mode fault resolves
// into a budget error and degrades instead of wedging the compiler.
func TestTimeoutConvertsHangs(t *testing.T) {
	file := writeTemp(t, "r.c", robustSrc)
	var out, errb strings.Builder
	code := run([]string{"-target", "r2000", "-timeout", "20ms", "-faults",
		"sched:hang@fn=two", file}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	note := errb.String()
	if !strings.Contains(note, "two: degraded") || !strings.Contains(note, "budget exceeded") {
		t.Errorf("missing budget degradation note:\n%s", note)
	}

	// Strict: the budget exhaustion is a per-function diagnostic and a
	// non-zero exit.
	var out2, errb2 strings.Builder
	code = run([]string{"-target", "r2000", "-strict", "-timeout", "20ms",
		"-faults", "sched:hang@fn=two", file}, &out2, &errb2)
	if code != 1 {
		t.Fatalf("strict exit %d, want 1; stderr: %s", code, errb2.String())
	}
	if !strings.Contains(errb2.String(), "two:") ||
		!strings.Contains(errb2.String(), "budget exceeded") {
		t.Errorf("strict stderr missing budget diagnostic:\n%s", errb2.String())
	}
}

// TestBadFaultSpecIsUsageError pins spec validation: a typo'd site
// cannot silently arm nothing.
func TestBadFaultSpecIsUsageError(t *testing.T) {
	file := writeTemp(t, "r.c", robustSrc)
	var out, errb strings.Builder
	if code := run([]string{"-faults", "bogus:panic", file}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown site") {
		t.Errorf("stderr = %s", errb.String())
	}
}

// TestFaultsEnvFallback pins the MARION_FAULTS environment fallback.
func TestFaultsEnvFallback(t *testing.T) {
	t.Setenv("MARION_FAULTS", "select:err@fn=one")
	file := writeTemp(t, "r.c", robustSrc)
	var out, errb strings.Builder
	if code := run([]string{"-target", "r2000", file}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "one: degraded") {
		t.Errorf("env-armed fault did not degrade:\n%s", errb.String())
	}
}

// TestFaultedOutputDeterministicAcrossWorkers pins satellite (d): the
// same fault spec at -workers 1, 4 and 8 yields byte-identical output
// and notes on both streams.
func TestFaultedOutputDeterministicAcrossWorkers(t *testing.T) {
	file := writeTemp(t, "r.c", robustSrc)
	args := []string{"-target", "r2000", "-timeout", "30ms", "-faults",
		"select:panic@fn=0;sched:hang@fn=1"}
	shot := func(workers string) (string, string) {
		var out, errb strings.Builder
		code := run(append(append([]string{}, args...), "-workers", workers, file),
			&out, &errb)
		if code != 0 {
			t.Fatalf("workers=%s exit %d, stderr: %s", workers, code, errb.String())
		}
		return out.String(), errb.String()
	}
	out1, err1 := shot("1")
	if !strings.Contains(err1, "degraded") {
		t.Fatalf("baseline did not degrade:\n%s", err1)
	}
	for _, w := range []string{"4", "8"} {
		out, errw := shot(w)
		if out != out1 {
			t.Errorf("workers=%s assembly differs from workers=1", w)
		}
		if errw != err1 {
			t.Errorf("workers=%s notes differ:\n%q\nvs\n%q", w, errw, err1)
		}
	}

	// Strict failures are deterministic too (stacks are normalized).
	strict := []string{"-target", "r2000", "-strict", "-timeout", "30ms",
		"-faults", "select:panic@fn=0;sched:hang@fn=1"}
	strictShot := func(workers string) string {
		var out, errb strings.Builder
		code := run(append(append([]string{}, strict...), "-workers", workers, file),
			&out, &errb)
		if code != 1 {
			t.Fatalf("strict workers=%s exit %d", workers, code)
		}
		return errb.String()
	}
	base := strictShot("1")
	for _, w := range []string{"4", "8"} {
		if got := strictShot(w); got != base {
			t.Errorf("strict workers=%s diagnostics differ:\n%q\nvs\n%q", w, got, base)
		}
	}
}
