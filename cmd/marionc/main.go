// Command marionc is the Marion compiler driver: it compiles C-subset
// source files to scheduled, register-allocated assembly for any shipped
// target, under any code generation strategy.
//
// Usage:
//
//	marionc -target r2000 -strategy postpass file.c
//	marionc -target i860 -strategy ips -stats file.c
//	marionc -target r2000 -verify file.c
//	marionc -target r2000 -workers 8 file.c
//	marionc -target r2000 -timeout 2s file.c
//	marionc -target r2000 -strict -timeout 2s file.c
//	marionc -target r2000 -faults 'select:panic@fn=3' file.c
//	marionc -replay /var/quarantine/r2000-rase-1
//
// -workers bounds the parallel per-function back end (default
// GOMAXPROCS); the emitted assembly is identical for any worker count.
// -verify re-checks the emitted code against the machine description
// (internal/verify); findings are printed per instruction and make the
// exit status non-zero.
//
// -timeout is the per-function compilation budget: a function that
// exceeds it fails with a typed budget error instead of hanging the
// compiler. On failure or budget exhaustion the function is retried
// down the degradation ladder (RASE -> IPS -> Postpass -> Safe), each
// fallback re-verified against the machine description before
// acceptance; every degradation prints a note. -strict disables the
// ladder: the failure becomes a per-function diagnostic and a non-zero
// exit.
//
// -faults (or MARION_FAULTS) arms the deterministic fault-injection
// harness (internal/faults) for chaos testing.
//
// -trace records a span tree of the compile (per-function, per-attempt,
// per-phase spans with attributes) and dumps it as indented JSON to
// stderr — the offline twin of mariond's GET /tracez.
//
// -cache enables the content-addressed compilation cache
// (internal/cache): each function is looked up by its canonical IR
// fingerprint, the machine-description fingerprint and the effective
// configuration before the back end runs; hits are byte-identical to a
// fresh compile. -cachedir persists entries on disk (checksummed;
// corrupt entries are rejected and recompiled) so repeated marionc runs
// share them. With -stats, cache hit/miss counts print to stderr.
// An armed -faults spec disables the cache for that run.
//
// -replay takes a quarantine bundle directory written by mariond when
// a circuit breaker trips (internal/overload): the bundle's IL is
// compiled under the bundle's recorded target, strategy, and options,
// reproducing the failing request offline. Combine with -faults to
// re-arm the injection that tripped it, or -strategy/-target to
// override the recorded configuration while minimizing.
//
// A file ending in .il is read as textual IL (internal/iltext) and
// skips the C front end; -emit-il stops after the front end and prints
// the module as textual IL instead of compiling it, so the two compose
// into a C -> IL -> assembly pipeline across marionc runs (or across
// machines: mariond accepts the same IL).
//
// When compilation fails, marionc prints EVERY structured diagnostic —
// one line per failing function with its phase — not just the first;
// a recovered phase panic prints its (normalized) stack.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"marion/internal/cache"
	"marion/internal/core"
	"marion/internal/driver"
	"marion/internal/faults"
	"marion/internal/iltext"
	"marion/internal/ir"
	"marion/internal/overload"
	"marion/internal/pipeline"
	"marion/internal/strategy"
	"marion/internal/trace"
	"marion/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive
// the full command. Exit status: 0 success, 1 compile error or verify
// findings, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marionc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "r2000", "target machine (see -list)")
	strat := fs.String("strategy", "postpass",
		"code generation strategy: "+strings.Join(strategy.KindNames(), ", "))
	stats := fs.Bool("stats", false, "print per-function back end statistics")
	list := fs.Bool("list", false, "list available targets and exit")
	out := fs.String("o", "", "write assembly to file instead of stdout")
	workers := fs.Int("workers", 0, "parallel back end workers (0 = GOMAXPROCS)")
	doVerify := fs.Bool("verify", false,
		"re-check emitted code against the machine description; findings fail the build")
	timeout := fs.Duration("timeout", 0,
		"per-function compilation budget (0 = none); exceeding it degrades or fails the function")
	strict := fs.Bool("strict", false,
		"disable the graceful-degradation ladder: failures and budget exhaustion are fatal")
	faultSpec := fs.String("faults", os.Getenv("MARION_FAULTS"),
		"fault-injection spec, e.g. 'select:panic@fn=3' (default $MARION_FAULTS)")
	useCache := fs.Bool("cache", false,
		"enable the content-addressed compilation cache (in-memory; add -cachedir to persist)")
	cacheDir := fs.String("cachedir", "",
		"on-disk cache directory, shared across runs (implies -cache)")
	emitIL := fs.Bool("emit-il", false,
		"stop after the front end and print the module as textual IL (compilable by marionc/mariond)")
	replay := fs.String("replay", "",
		"replay a mariond quarantine bundle directory under its recorded configuration")
	doTrace := fs.Bool("trace", false,
		"trace the compile (per-function, per-attempt, per-phase spans) and dump the span tree as JSON to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, t := range core.Targets() {
			fmt.Fprintln(stdout, t)
		}
		return 0
	}
	if *replay != "" {
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "usage: marionc -replay <bundle-dir>")
			return 2
		}
		return runReplay(fs, *replay, stdout, stderr)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: marionc [-target T] [-strategy S] [-verify] file.c")
		return 2
	}
	file := fs.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		return fail(stderr, err)
	}
	isIL := strings.HasSuffix(file, ".il")
	if *emitIL {
		var mod *ir.Module
		if isIL {
			mod, err = iltext.Parse(file, string(src)) // normalizing re-print
		} else {
			mod, err = driver.Frontend(file, string(src))
		}
		if err != nil {
			return fail(stderr, err)
		}
		return emit(stdout, stderr, *out, iltext.Print(mod))
	}
	kind, err := strategy.ParseKind(*strat)
	if err != nil {
		return fail(stderr, err)
	}
	fset, err := faults.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintln(stderr, "marionc:", err)
		return 2
	}
	gen, err := core.New(*target, kind)
	if err != nil {
		return fail(stderr, err)
	}
	gen.Workers = *workers
	gen.Verify = *doVerify
	gen.Budget = time.Duration(*timeout)
	gen.Strict = *strict
	gen.Faults = fset
	if *useCache || *cacheDir != "" {
		ch, err := cache.New(cache.Options{Dir: *cacheDir})
		if err != nil {
			// The memory tier still works; warn and continue.
			fmt.Fprintln(stderr, "marionc: warning:", err)
		}
		gen.Cache = ch
	}
	var root *trace.Span
	if *doTrace {
		root = trace.New(trace.NewID(), "marionc")
		gen.Span = root
	}
	var res *core.Result
	if isIL {
		res, err = gen.CompileIL(file, string(src))
	} else {
		res, err = gen.Compile(file, string(src))
	}
	dumpTrace(stderr, root, err)
	if err != nil {
		return fail(stderr, err)
	}
	for _, d := range res.Degradations {
		fmt.Fprintf(stderr, "marionc: note: %s\n", d.String())
	}
	if code := emit(stdout, stderr, *out, res.Program.Print()); code != 0 {
		return code
	}
	if *stats {
		var names []string
		for n := range res.Stats {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			st := res.Stats[n]
			fmt.Fprintf(stderr,
				"%s: est %d cycles, %d spills (%d slots), %d alloc rounds, %d schedule passes\n",
				n, st.EstimatedCycles, st.Spills, st.SpillSlots, st.AllocRounds, st.SchedulePasses)
		}
		if gen.Cache != nil {
			cs := gen.Cache.Stats()
			fmt.Fprintf(stderr,
				"cache: %d hit(s) (%d mem, %d disk), %d miss(es), %d store(s), %d eviction(s), %d reject(s)\n",
				cs.Hits(), cs.MemHits, cs.DiskHits, cs.Misses, cs.Stores, cs.Evictions, cs.Rejects)
		}
	}
	if *doVerify && !res.Verify.Empty() {
		printFindings(stderr, res.Verify)
		return 1
	}
	return 0
}

// runReplay compiles a quarantine bundle (internal/overload) under its
// recorded target, strategy, and options. Flags the user set explicitly
// override the recording, so a bundle can be minimized interactively.
func runReplay(fs *flag.FlagSet, dir string, stdout, stderr io.Writer) int {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	str := func(name, recorded string) string {
		if set[name] {
			return fs.Lookup(name).Value.String()
		}
		return recorded
	}

	b, il, err := overload.LoadBundle(dir)
	if err != nil {
		return fail(stderr, err)
	}
	kind, err := strategy.ParseKind(str("strategy", b.Strategy))
	if err != nil {
		return fail(stderr, err)
	}
	fset, err := faults.Parse(str("faults", ""))
	if err != nil {
		fmt.Fprintln(stderr, "marionc:", err)
		return 2
	}
	cfg := driver.Config{
		Target:       str("target", b.Target),
		Strategy:     kind,
		LinearSelect: b.Options.LinearSelect,
		Verify:       b.Options.Verify || set["verify"],
		Workers:      b.Options.Workers,
		Budget:       time.Duration(b.Options.BudgetMs) * time.Millisecond,
		Strict:       b.Options.Strict,
		Faults:       fset,
	}
	if set["workers"] {
		fmt.Sscan(fs.Lookup("workers").Value.String(), &cfg.Workers)
	}
	if set["timeout"] {
		cfg.Budget, _ = time.ParseDuration(fs.Lookup("timeout").Value.String())
	}
	if set["strict"] {
		cfg.Strict = fs.Lookup("strict").Value.String() == "true"
	}

	fmt.Fprintf(stderr, "marionc: replaying %s: %s/%s after %d failure(s): %s\n",
		dir, cfg.Target, cfg.Strategy, b.Failures, b.Reason)
	res, err := driver.CompileIL(filepath.Join(dir, overload.ILFile), il, cfg)
	if err != nil {
		return fail(stderr, err)
	}
	for _, d := range res.Degradations {
		fmt.Fprintf(stderr, "marionc: note: %s\n", d.String())
	}
	if code := emit(stdout, stderr, str("o", ""), res.Prog.Print()); code != 0 {
		return code
	}
	if cfg.Verify && !res.Verify.Empty() {
		printFindings(stderr, res.Verify)
		return 1
	}
	return 0
}

// dumpTrace finishes a -trace root span and prints the span tree as
// indented JSON to stderr; a nil root (tracing off) prints nothing.
func dumpTrace(stderr io.Writer, root *trace.Span, cerr error) {
	if root == nil {
		return
	}
	outcome := "ok"
	if cerr != nil {
		outcome = "failed"
	}
	b, err := json.MarshalIndent(root.Finish(outcome, 0), "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "marionc: trace:", err)
		return
	}
	fmt.Fprintf(stderr, "marionc: trace:\n%s\n", b)
}

// emit writes text to the -o file or stdout; exit status 0 or 1.
func emit(stdout, stderr io.Writer, out, text string) int {
	if out != "" {
		if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
			return fail(stderr, err)
		}
		return 0
	}
	fmt.Fprint(stdout, text)
	return 0
}

// fail prints a compile failure and returns the exit status. A
// *pipeline.Diagnostics error is expanded into one line per failing
// function (with its phase); anything else prints as-is.
func fail(stderr io.Writer, err error) int {
	var diags *pipeline.Diagnostics
	if errors.As(err, &diags) {
		all := diags.All()
		fmt.Fprintf(stderr, "marionc: %d function(s) failed:\n", len(all))
		for _, d := range all {
			fmt.Fprintf(stderr, "  %s: %s: %v\n", d.Func, d.Phase, d.Err)
			var pe *pipeline.PanicError
			if errors.As(d.Err, &pe) {
				for _, line := range strings.Split(pe.Stack, "\n") {
					fmt.Fprintf(stderr, "    %s\n", line)
				}
			}
		}
		return 1
	}
	fmt.Fprintln(stderr, "marionc:", err)
	return 1
}

// printFindings renders every verifier finding, one per line, grouped
// under a count header.
func printFindings(stderr io.Writer, rep *verify.Report) {
	fmt.Fprintf(stderr, "marionc: verify: %d finding(s):\n", len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Fprintf(stderr, "  %s\n", f)
	}
}
