// Command marionc is the Marion compiler driver: it compiles C-subset
// source files to scheduled, register-allocated assembly for any shipped
// target, under any code generation strategy.
//
// Usage:
//
//	marionc -target r2000 -strategy postpass file.c
//	marionc -target i860 -strategy ips -stats file.c
//	marionc -target r2000 -workers 8 file.c
//
// -workers bounds the parallel per-function back end (default
// GOMAXPROCS); the emitted assembly is identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"marion/internal/core"
	"marion/internal/strategy"
)

func main() {
	target := flag.String("target", "r2000", "target machine (see -list)")
	strat := flag.String("strategy", "postpass",
		"code generation strategy: "+strings.Join(strategy.KindNames(), ", "))
	stats := flag.Bool("stats", false, "print per-function back end statistics")
	list := flag.Bool("list", false, "list available targets and exit")
	out := flag.String("o", "", "write assembly to file instead of stdout")
	workers := flag.Int("workers", 0, "parallel back end workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, t := range core.Targets() {
			fmt.Println(t)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: marionc [-target T] [-strategy S] file.c")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	kind, err := strategy.ParseKind(*strat)
	if err != nil {
		fatal(err)
	}
	gen, err := core.New(*target, kind)
	if err != nil {
		fatal(err)
	}
	gen.Workers = *workers
	res, err := gen.Compile(file, string(src))
	if err != nil {
		fatal(err)
	}
	text := res.Program.Print()
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(text)
	}
	if *stats {
		var names []string
		for n := range res.Stats {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			st := res.Stats[n]
			fmt.Fprintf(os.Stderr,
				"%s: est %d cycles, %d spills (%d slots), %d alloc rounds, %d schedule passes\n",
				n, st.EstimatedCycles, st.Spills, st.SpillSlots, st.AllocRounds, st.SchedulePasses)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "marionc:", err)
	os.Exit(1)
}
