package main

import (
	"strings"
	"testing"

	"marion/internal/overload"
)

// buildBundle writes a quarantine bundle the way mariond would: the
// module as textual IL plus the recorded configuration.
func buildBundle(t *testing.T, target, strat string) string {
	t.Helper()
	file := writeTemp(t, "q.c", robustSrc)
	var il, errb strings.Builder
	if code := run([]string{"-emit-il", file}, &il, &errb); code != 0 {
		t.Fatalf("emit-il exit %d: %s", code, errb.String())
	}
	dir := t.TempDir()
	path, err := overload.WriteBundle(dir, &overload.Bundle{
		Key:      target + "/" + strat,
		Target:   target,
		Strategy: strat,
		Reason:   "injected panic at select",
		Failures: 2,
	}, il.String())
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayBundle pins -replay: the bundle compiles under its
// recorded target and strategy, byte-identical to compiling the same
// IL directly.
func TestReplayBundle(t *testing.T) {
	path := buildBundle(t, "r2000", "rase")

	var got, errb strings.Builder
	if code := run([]string{"-replay", path}, &got, &errb); code != 0 {
		t.Fatalf("replay exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "replaying") ||
		!strings.Contains(errb.String(), "r2000/rase") {
		t.Errorf("missing replay banner:\n%s", errb.String())
	}

	ilFile := writeTemp(t, "q.il", mustReadBundleIL(t, path))
	var want strings.Builder
	if code := run([]string{"-target", "r2000", "-strategy", "rase", ilFile},
		&want, &errb); code != 0 {
		t.Fatalf("direct compile exit %d: %s", code, errb.String())
	}
	if got.String() != want.String() {
		t.Errorf("replay output differs from direct compile:\n--- replay\n%s--- direct\n%s",
			got.String(), want.String())
	}
}

// TestReplayOverrides pins the minimization workflow: explicit flags
// beat the bundle's recorded configuration.
func TestReplayOverrides(t *testing.T) {
	path := buildBundle(t, "r2000", "rase")

	var got, errb strings.Builder
	if code := run([]string{"-replay", path, "-strategy", "postpass"},
		&got, &errb); code != 0 {
		t.Fatalf("replay exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "r2000/postpass") {
		t.Errorf("override not reflected in banner:\n%s", errb.String())
	}

	ilFile := writeTemp(t, "q.il", mustReadBundleIL(t, path))
	var want strings.Builder
	if code := run([]string{"-target", "r2000", "-strategy", "postpass", ilFile},
		&want, &errb); code != 0 {
		t.Fatalf("direct compile exit %d: %s", code, errb.String())
	}
	if got.String() != want.String() {
		t.Error("replay -strategy postpass differs from a direct postpass compile")
	}
}

// TestReplayRejectsArgs: -replay takes no positional file.
func TestReplayRejectsArgs(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-replay", "somewhere", "extra.c"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want usage error 2", code)
	}
}

// TestReplayMissingBundle: a bad directory is a compile failure, not a
// panic.
func TestReplayMissingBundle(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-replay", t.TempDir()}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
}

func mustReadBundleIL(t *testing.T, path string) string {
	t.Helper()
	_, il, err := overload.LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	return il
}
