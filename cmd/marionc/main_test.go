package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"marion/internal/pipeline"
	"marion/internal/verify"
)

func writeTemp(t *testing.T, name, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunCompiles(t *testing.T) {
	file := writeTemp(t, "ok.c", `int f(int a, int b) { return a + b; }`)
	var out, errb strings.Builder
	if code := run([]string{"-target", "r2000", file}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "f:") {
		t.Errorf("no assembly for f on stdout:\n%s", out.String())
	}
}

func TestRunVerifyCleanBuild(t *testing.T) {
	file := writeTemp(t, "ok.c", `
int g;
int f(int a) { return a * g + 1; }
double h(double x, double y) { return x * y + x; }`)
	for _, target := range []string{"r2000", "i860", "m88000"} {
		var out, errb strings.Builder
		code := run([]string{"-target", target, "-strategy", "ips", "-verify", file}, &out, &errb)
		if code != 0 {
			t.Errorf("%s: exit %d, stderr: %s", target, code, errb.String())
		}
	}
}

func TestRunBadSourceExitsNonZero(t *testing.T) {
	file := writeTemp(t, "bad.c", `int f( { }`)
	var out, errb strings.Builder
	if code := run([]string{file}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "marionc:") {
		t.Errorf("no error printed: %s", errb.String())
	}
}

// TestEmitILRoundTrip drives the split pipeline: C -> -emit-il -> .il
// input -> assembly, and requires the result byte-identical to the
// direct C compile.
func TestEmitILRoundTrip(t *testing.T) {
	cfile := writeTemp(t, "ok.c", `
int g;
int f(int a, int b) { return a * g + b; }`)

	var direct, errb strings.Builder
	if code := run([]string{"-target", "r2000", cfile}, &direct, &errb); code != 0 {
		t.Fatalf("direct compile: exit %d, stderr: %s", code, errb.String())
	}

	var il strings.Builder
	errb.Reset()
	if code := run([]string{"-emit-il", cfile}, &il, &errb); code != 0 {
		t.Fatalf("-emit-il: exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(il.String(), "func f ret int") {
		t.Fatalf("-emit-il output does not look like IL:\n%s", il.String())
	}

	ilfile := writeTemp(t, "ok.il", il.String())
	var viaIL strings.Builder
	errb.Reset()
	if code := run([]string{"-target", "r2000", ilfile}, &viaIL, &errb); code != 0 {
		t.Fatalf("compile .il: exit %d, stderr: %s", code, errb.String())
	}
	// The module is named after the input file; normalize before the
	// byte comparison.
	want := strings.ReplaceAll(direct.String(), cfile, ilfile)
	if viaIL.String() != want {
		t.Errorf("IL detour changed the assembly:\n--- direct\n%s\n--- via IL\n%s",
			direct.String(), viaIL.String())
	}

	// -emit-il on a .il input is a normalizing re-print.
	var again strings.Builder
	errb.Reset()
	if code := run([]string{"-emit-il", ilfile}, &again, &errb); code != 0 {
		t.Fatalf("-emit-il on .il: exit %d, stderr: %s", code, errb.String())
	}
	if again.String() != il.String() {
		t.Error("-emit-il on its own output is not idempotent")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"-strategy", "bogus", writeTemp(t, "x.c", `int f(void){return 0;}`)}, &out, &errb); code != 1 {
		t.Errorf("bad strategy exit %d, want 1", code)
	}
}

// TestFailPrintsEveryDiagnostic pins the multi-failure contract: a
// *pipeline.Diagnostics error prints one attributed line per failing
// function, not just the first.
func TestFailPrintsEveryDiagnostic(t *testing.T) {
	diags := &pipeline.Diagnostics{}
	diags.Add(0, "bad1", "select", errors.New("no template matches"))
	diags.Add(1, "bad2", "strategy", errors.New("allocation failed"))
	var errb strings.Builder
	if code := fail(&errb, diags.Err()); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	got := errb.String()
	for _, want := range []string{"2 function(s) failed", "bad1: select: no template matches",
		"bad2: strategy: allocation failed"} {
		if !strings.Contains(got, want) {
			t.Errorf("diagnostics output missing %q:\n%s", want, got)
		}
	}
}

// TestPrintFindingsListsAll pins the verify-findings output: every
// finding appears with its kind and instruction anchor.
func TestPrintFindingsListsAll(t *testing.T) {
	rep := &verify.Report{Findings: []verify.Finding{
		{Kind: verify.KindLatency, Func: "f", Block: "b0", Index: 3, Cycle: 2, Msg: "too close"},
		{Kind: verify.KindControl, Func: "g", Block: "b1", Index: 0, Cycle: 5, Msg: "slot missing"},
	}}
	var errb strings.Builder
	printFindings(&errb, rep)
	got := errb.String()
	for _, want := range []string{"2 finding(s)", "f/b0#3@2: latency: too close",
		"g/b1#0@5: control: slot missing"} {
		if !strings.Contains(got, want) {
			t.Errorf("findings output missing %q:\n%s", want, got)
		}
	}
}

func TestListTargets(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"r2000", "i860", "m88000", "rs6000"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list missing %s", want)
		}
	}
}
