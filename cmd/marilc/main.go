// Command marilc is the code generator generator front: it checks a
// Maril machine description and reports its derived tables, the role the
// paper's CGG plays (minus emitting C source — the tables are built in
// memory).
//
// Usage:
//
//	marilc r2000              # check a shipped description
//	marilc -dump i860         # also dump the instruction templates
//	marilc -file my.maril     # check a description file
package main

import (
	"flag"
	"fmt"
	"os"

	"marion/internal/mach"
	"marion/internal/maril"
	"marion/internal/targets"
)

func main() {
	dump := flag.Bool("dump", false, "dump instruction templates")
	file := flag.String("file", "", "check a description file instead of a shipped target")
	flag.Parse()

	var m *mach.Machine
	var info *maril.Info
	var err error
	switch {
	case *file != "":
		src, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		m, info, err = maril.ParseInfo(*file, string(src))
	case flag.NArg() == 1:
		m, info, err = targets.LoadInfo(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: marilc [-dump] [-file desc.maril | target]")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	st := m.Stat()
	fmt.Printf("machine %s: OK\n", m.Name)
	fmt.Printf("  lines: declare %d, cwvm %d, instr %d (total %d)\n",
		info.DeclareLines, info.CwvmLines, info.InstrLines, info.TotalLines)
	fmt.Printf("  register sets %d (%d physical registers), resources %d\n",
		st.RegSets, m.NumPhys, st.Resources)
	fmt.Printf("  instructions %d, moves %d, seqs %d, escapes %d\n",
		st.Instrs, st.Moves, st.Seqs, st.Funcs)
	fmt.Printf("  clocks %d, elements %d, classed ops %d, aux latencies %d, glue %d\n",
		st.Clocks, st.Elements, st.Classes, st.AuxLats, st.Glues)

	if *dump {
		for _, in := range m.Instrs {
			fmt.Printf("  %-10s %-40s lat=%d slots=%d cycles=%d",
				in.Mnemonic, in.Sem, in.Latency, in.Slots, len(in.ResVec))
			if in.AffectsClock >= 0 {
				fmt.Printf(" clock=%s", m.Clocks[in.AffectsClock])
			}
			if !in.Class.IsEmpty() {
				fmt.Printf(" classed")
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "marilc:", err)
	os.Exit(1)
}
