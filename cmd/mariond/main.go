// Command mariond is the Marion compile service: marionc's pipeline
// behind a long-running HTTP daemon (internal/server).
//
// Usage:
//
//	mariond -addr :8527
//	mariond -addr 127.0.0.1:0 -addrfile /tmp/mariond.addr
//	mariond -admit 8 -queue 16 -deadline 10s
//	mariond -cachedir /var/cache/marion -cachemb 256
//	mariond -targets r2000,m88000
//
// The daemon loads each target's machine description once and shares
// the finalized machines — and one content-addressed compilation
// cache — across every request. POST /compile takes C-subset or
// textual-IL source and returns assembly plus structured diagnostics
// as JSON; accepted requests produce output byte-identical to marionc.
//
// Admission control bounds concurrent compiles (-admit) and the wait
// queue (-queue); beyond both, requests are shed immediately with
// 429 and a computed Retry-After. With -slo-ms the admission limit
// adapts (AIMD) to measured compile latency, and queued requests whose
// remaining deadline falls below the service estimate are shed before
// they are doomed. Each request runs under a deadline (the
// X-Marion-Deadline-Ms header, clamped to -maxdeadline, else
// -deadline) that propagates into the scheduler and allocator loops:
// an expired request returns per-function diagnostics, never a hung
// connection.
//
// -brownout arms the hysteretic degradation ladder (verify off ->
// strategies capped -> safe only -> cache-only) under sustained
// pressure; -breaker N arms per-(target, strategy) circuit breakers
// that reroute repeatedly failing combinations down the strategy
// fallback chain, quarantining a replayable bundle under -quarantine.
// -faults (or MARION_FAULTS) arms deterministic fault injection at
// pipeline and serve sites for chaos drills.
//
// Observability: every request carries a request ID (client-supplied
// X-Marion-Request-Id or generated), is logged as one structured JSON
// access line (-accesslog), and — with -trace-ring N — leaves a full
// span tree in the in-memory trace ring served at GET /tracez, which
// preferentially retains slow and SLO-breaching requests
// (-trace-slo-ms). GET /metrics renders every instrument in the
// Prometheus text exposition format.
//
// SIGTERM or SIGINT begins a graceful drain: /readyz flips to 503 and
// new compiles are rejected, in-flight requests finish (bounded by
// -draintimeout), the cache's disk tier is flushed, and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"marion/internal/faults"
	"marion/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// openAccessLog builds the structured access logger from the -accesslog
// flag value. The returned close func is a no-op except for file
// destinations.
func openAccessLog(dest string, stdout, stderr io.Writer) (*slog.Logger, func(), error) {
	nop := func() {}
	var w io.Writer
	switch dest {
	case "off", "":
		return nil, nop, nil
	case "stderr":
		w = stderr
	case "stdout":
		w = stdout
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nop, fmt.Errorf("accesslog: %w", err)
		}
		return slog.New(slog.NewJSONHandler(f, nil)), func() { f.Close() }, nil
	}
	return slog.New(slog.NewJSONHandler(w, nil)), nop, nil
}

// run is main with its environment made explicit. Exit status: 0 clean
// drain, 1 runtime failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mariond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8527", "listen address (port 0 picks a free port)")
	addrFile := fs.String("addrfile", "",
		"write the actual listen address to this file once serving (for scripts with -addr :0)")
	admit := fs.Int("admit", 0, "max concurrent compiles (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max requests waiting for a compile slot (0 = 2*admit)")
	deadline := fs.Duration("deadline", 30*time.Second,
		"default per-request deadline when no "+server.DeadlineHeader+" header is sent")
	maxDeadline := fs.Duration("maxdeadline", 2*time.Minute,
		"upper clamp on client-supplied deadlines")
	budget := fs.Duration("budget", 0,
		"default per-function compilation budget (0 = the request deadline alone)")
	workers := fs.Int("workers", 1, "per-request back end workers (output is identical for any value)")
	cacheMB := fs.Int64("cachemb", 64, "in-memory cache size in MiB, shared across requests")
	cacheDir := fs.String("cachedir", "", "on-disk cache directory, flushed on drain")
	targetList := fs.String("targets", "", "comma-separated targets to serve (default: all)")
	drainTimeout := fs.Duration("draintimeout", 30*time.Second,
		"how long a drain waits for in-flight requests before closing connections")
	sloMs := fs.Int64("slo-ms", 0,
		"compile latency SLO in ms driving the adaptive admission limit (0 = fixed at -admit)")
	brownout := fs.Bool("brownout", false,
		"enable the brownout degradation ladder under sustained pressure")
	breaker := fs.Int("breaker", 0,
		"consecutive failures tripping a per-(target,strategy) circuit breaker (0 = off)")
	breakerCooldown := fs.Duration("breakercooldown", time.Second,
		"how long a tripped breaker stays open before admitting a probe")
	quarantine := fs.String("quarantine", "",
		"directory receiving replayable bundles on breaker trips (replay with marionc -replay)")
	faultSpec := fs.String("faults", os.Getenv("MARION_FAULTS"),
		"fault injection spec for chaos drills (pipeline sites plus serve); default $MARION_FAULTS")
	traceRing := fs.Int("trace-ring", 256,
		"finished request traces retained for GET /tracez (0 = tracing off)")
	traceSLOMs := fs.Int64("trace-slo-ms", 0,
		"trace duration marking an SLO breach the ring preferentially keeps (0 = -slo-ms, else 1s)")
	accessLog := fs.String("accesslog", "stderr",
		"structured JSON access log destination: stderr, stdout, off, or a file path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: mariond [flags]")
		return 2
	}
	fset, err := faults.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintln(stderr, "mariond:", err)
		return 2
	}
	alog, closeLog, err := openAccessLog(*accessLog, stdout, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "mariond:", err)
		return 2
	}
	defer closeLog()

	cfg := server.Config{
		MaxInflight:      *admit,
		MaxQueue:         *queue,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		Budget:           *budget,
		Workers:          *workers,
		CacheBytes:       *cacheMB << 20,
		CacheDir:         *cacheDir,
		SLO:              time.Duration(*sloMs) * time.Millisecond,
		Brownout:         *brownout,
		BreakerThreshold: *breaker,
		BreakerCooldown:  *breakerCooldown,
		QuarantineDir:    *quarantine,
		Faults:           fset,
		TraceRing:        *traceRing,
		TraceSLO:         time.Duration(*traceSLOMs) * time.Millisecond,
		AccessLog:        alog,
	}
	if *targetList != "" {
		for _, t := range strings.Split(*targetList, ",") {
			if t = strings.TrimSpace(t); t != "" {
				cfg.Targets = append(cfg.Targets, t)
			}
		}
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "mariond:", err)
		return 1
	}
	if warn := s.Warning(); warn != nil {
		fmt.Fprintln(stderr, "mariond: warning:", warn)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "mariond:", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(stderr, "mariond:", err)
			return 1
		}
	}

	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "mariond: serving %s on %s\n",
		strings.Join(s.Targets(), ","), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "mariond:", err)
		return 1
	case got := <-sig:
		fmt.Fprintf(stdout, "mariond: %v: draining\n", got)
		s.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "mariond: drain timed out:", err)
			hs.Close()
		}
		n := s.Close()
		fmt.Fprintf(stdout, "mariond: drained, flushed %d cache entries\n", n)
		return 0
	}
}
