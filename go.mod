module marion

go 1.22
